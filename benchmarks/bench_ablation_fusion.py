"""Ablation — fusion function choice (paper §4.3, DESIGN.md §5.5).

Section 4.3 argues for the weighted FJ fusion over the two search-fusion
alternatives it cites: the plain average (ignores the signals' different
importance) and the max (discards one signal per pair).  This bench scores
all three on the shared snapshot.  Expected: FJ(0.7) >= average >= / ~ max.
"""

from conftest import effectiveness_index, effectiveness_workload

from repro.core.fusion import fuse_average, fuse_fj, fuse_max
from repro.core.recommender import FusionRecommender
from repro.evaluation import evaluate_method, format_table


def test_ablation_fusion_functions(benchmark, report, panel):
    workload = effectiveness_workload()
    index = effectiveness_index(k=60)
    scorer = FusionRecommender(index, omega=0.5, social_mode="exact")
    components = {
        source: scorer.component_scores(source) for source in workload.sources
    }

    def ranker(fuse):
        def recommend(query, top_k):
            scored = sorted(
                (
                    (-fuse(content, social), candidate)
                    for candidate, (content, social) in components[query].items()
                ),
            )
            return [candidate for _, candidate in scored[:top_k]]

        return recommend

    variants = [
        ("FJ (omega=0.7)", lambda c, s: fuse_fj(c, s, 0.7)),
        ("average", fuse_average),
        ("max", fuse_max),
    ]
    reports = [
        evaluate_method(name, ranker(fuse), workload.sources, panel, exclude_query=False)
        for name, fuse in variants
    ]
    table = format_table(reports)
    by_name = {r.method: r for r in reports}
    fj_best = by_name["FJ (omega=0.7)"].row(10).ar >= max(
        by_name["average"].row(10).ar, by_name["max"].row(10).ar
    ) - 0.05
    report(table + f"\n\nshape check (FJ >= average and max at top-10 AR): {fj_best}")
    assert fj_best

    benchmark(lambda: fuse_fj(0.4, 0.6, 0.7))
