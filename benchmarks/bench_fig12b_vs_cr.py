"""Figure 12(b) — CSF-SAR-H vs content-only CR, overall time cost.

Regenerates the paper's Figure 12(b): recommendation time of the fully
optimised CSF-SAR-H against the content-only CR baseline over the same
50-200 hour sweep.  Expected shape: the two curves nearly coincide —
"the time cost of social relevance computation can be neglected" next to
the content relevance computation — even though CSF-SAR-H also folds in
all the social information.
"""

from conftest import dense_efficiency_index, dense_efficiency_workload

from repro.core.recommender import content_recommender, csf_sar_h_recommender
from repro.evaluation.harness import Timer

PAPER_HOURS = (50, 100, 150, 200)
QUERIES_PER_SIZE = 3


def _average_query_seconds(recommender, sources) -> float:
    recommender.recommend(sources[0], 10)  # warm caches before timing
    with Timer() as timer:
        for source in sources[:QUERIES_PER_SIZE]:
            recommender.recommend(source, 10)
    return timer.seconds / QUERIES_PER_SIZE


def test_fig12b_sar_h_vs_cr(benchmark, report):
    lines = [f"{'hours':>6} {'CR (s)':>10} {'CSF-SAR-H (s)':>14} {'ratio':>7}"]
    lines.append("-" * 40)
    ratios = []
    for hours in PAPER_HOURS:
        workload = dense_efficiency_workload(hours)
        index = dense_efficiency_index(hours)
        # Scalar engine on purpose: the figure compares the paper's
        # original per-candidate cost model (see bench_fig12a_sar.py).
        cr_time = _average_query_seconds(
            content_recommender(index, engine="scalar"), workload.sources
        )
        sar_h_time = _average_query_seconds(
            csf_sar_h_recommender(index, engine="scalar"), workload.sources
        )
        ratio = sar_h_time / max(cr_time, 1e-9)
        ratios.append(ratio)
        lines.append(f"{hours:>6} {cr_time:>10.4f} {sar_h_time:>14.4f} {ratio:>7.2f}")

    competitive = all(ratio < 2.0 for ratio in ratios)
    lines.append(
        f"\nshape check (CSF-SAR-H within 2x of CR at every size, "
        f"paper: 'as good as CR'): {competitive}"
    )
    report("\n".join(lines), engine="scalar")
    assert competitive

    index = dense_efficiency_index(PAPER_HOURS[0])
    workload = dense_efficiency_workload(PAPER_HOURS[0])
    cr = content_recommender(index, engine="scalar")
    benchmark(lambda: cr.recommend(workload.sources[0], 10))
