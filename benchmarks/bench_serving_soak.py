"""Serving soak benchmark: latency and degradation under concurrent chaos.

Runs the seeded chaos soak from :mod:`repro.testing.chaos` — concurrent
writers publishing epochs, readers querying through the gateway's
admission control, a fault schedule tripping the circuit breaker — and
reports the serving-quality numbers the gateway is accountable for:
p50/p99/max query latency, the shed rate (admission control), the
degraded rate (breaker fallback to content-only), the partial count
(deadline-bounded scans) and the oracle-parity verdict.

Besides the human-readable summary, the run writes
``BENCH_serving_soak.json`` at the repo root (the artifact CI uploads).
A failing soak exits non-zero; the full seeded schedule lands in
``$CHAOS_ARTIFACT_DIR`` if that is set.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_serving_soak.py
[--smoke]``) or under pytest (``pytest benchmarks/bench_serving_soak.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.testing.chaos import SoakConfig, run_soak

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serving_soak.json"

DEFAULT_QUERIES = 12_000
DEFAULT_SEED = 2015


def run_bench(
    queries: int = DEFAULT_QUERIES,
    writers: int = 4,
    readers: int = 16,
    seed: int = DEFAULT_SEED,
    verify: bool = True,
    json_path: pathlib.Path | None = JSON_PATH,
) -> dict:
    """Run one soak and return (and optionally persist) the payload."""
    config = SoakConfig(
        queries=queries, writers=writers, readers=readers, seed=seed, verify=verify
    )
    report = run_soak(config)
    payload = {
        "bench": "serving_soak",
        "unix_time": time.time(),
        "soak": {
            "writers": config.writers,
            "readers": config.readers,
            "queries_attempted": config.queries,
            "top_k": config.top_k,
            "seed": config.seed,
            "hours": config.hours,
            "base_videos": config.base_videos,
            "verified": config.verify,
        },
        "queries_served": report.queries_total,
        "queries_shed": report.queries_shed,
        "queries_degraded": report.queries_degraded,
        "queries_partial": report.queries_partial,
        "shed_rate": report.shed_rate,
        "degraded_rate": report.degraded_rate,
        "latency_ms": report.latencies_ms,
        "epochs_published": report.epochs_published,
        "epochs_retired": report.epochs_retired,
        "breaker_transitions": len(report.breaker_transitions),
        "parity_checked": report.parity_checked,
        "parity_failures": len(report.parity_failures),
        "reader_errors": len(report.reader_errors),
        "writer_errors": len(report.writer_errors),
        "elapsed_seconds": report.elapsed_seconds,
        "ok": report.ok,
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def format_summary(payload: dict) -> str:
    soak = payload["soak"]
    latency = payload["latency_ms"]
    parity = (
        f"{payload['parity_checked'] - payload['parity_failures']}"
        f"/{payload['parity_checked']}"
        if soak["verified"]
        else "skipped"
    )
    return (
        f"writers={soak['writers']} readers={soak['readers']} "
        f"attempted={soak['queries_attempted']} seed={soak['seed']}\n"
        f"served={payload['queries_served']} "
        f"shed={payload['queries_shed']} ({payload['shed_rate'] * 100:.1f}%) "
        f"degraded={payload['queries_degraded']} "
        f"({payload['degraded_rate'] * 100:.1f}%) "
        f"partial={payload['queries_partial']}\n"
        f"latency ms: p50={latency.get('p50', 0.0):.2f} "
        f"p99={latency.get('p99', 0.0):.2f} max={latency.get('max', 0.0):.2f}\n"
        f"epochs published={payload['epochs_published']} "
        f"retired={payload['epochs_retired']} "
        f"breaker transitions={payload['breaker_transitions']}\n"
        f"oracle parity: {parity}  errors: "
        f"{payload['reader_errors']} reader / {payload['writer_errors']} writer\n"
        f"ok={payload['ok']} ({payload['elapsed_seconds']:.1f}s soak)"
    )


def test_serving_soak(report):
    # Bench-sized, verified run; the acceptance-scale soak lives in
    # tests/test_chaos_soak.py.
    payload = run_bench(queries=2_000, json_path=None)
    report(format_summary(payload), engine="batch")
    assert payload["ok"], "soak failed; see parity/reader/writer error counts"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--writers", type=int, default=4)
    parser.add_argument("--readers", type=int, default=16)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the serial-oracle replay (timing-only run)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down soak for CI: 3000 attempted queries, verified",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_bench(queries=3_000, seed=args.seed)
    else:
        payload = run_bench(
            queries=args.queries,
            writers=args.writers,
            readers=args.readers,
            seed=args.seed,
            verify=not args.no_verify,
        )
    print(format_summary(payload))
    if not payload["ok"]:
        raise SystemExit("serving soak failed")


if __name__ == "__main__":
    main()
