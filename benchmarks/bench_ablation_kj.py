"""Ablation — κJ matching strategy (DESIGN.md §5.2).

Eq. 4 of the paper leaves the signature-pair matching implicit.  This
bench compares the production one-to-one greedy matching against the
literal all-pairs reading, plus a threshold sweep, on content-only
recommendation quality.  Expected: matched κJ beats all-pairs (one strong
match should not be diluted by every weak cross pair), and a moderate
threshold beats both extremes.
"""

from conftest import effectiveness_index, effectiveness_workload

from repro.core.recommender import FusionRecommender
from repro.evaluation import evaluate_method, format_table
from repro.measures.content import kappa_j, kappa_j_all_pairs


def test_ablation_kj_matching(benchmark, report, panel):
    workload = effectiveness_workload()
    index = effectiveness_index(k=60)

    def make_recommender(scorer, name):
        recommender = FusionRecommender(index, omega=0.0, name=name)
        recommender._content = scorer  # ablate the content measure only
        return recommender

    variants = [
        ("matched t=0.2", lambda a, b: kappa_j(a, b, match_threshold=0.2)),
        ("matched t=0.5", lambda a, b: kappa_j(a, b, match_threshold=0.5)),
        ("matched t=0.0", lambda a, b: kappa_j(a, b, match_threshold=0.0)),
        ("all-pairs", kappa_j_all_pairs),
    ]
    reports = [
        evaluate_method(
            name, make_recommender(scorer, name).recommend, workload.sources, panel
        )
        for name, scorer in variants
    ]
    table = format_table(reports)
    by_name = {r.method: r for r in reports}
    matched_beats_all_pairs = (
        by_name["matched t=0.2"].row(10).ar >= by_name["all-pairs"].row(10).ar
    )
    report(
        table
        + f"\n\nshape check (matched kJ >= all-pairs at top-10 AR): {matched_beats_all_pairs}"
    )
    assert matched_beats_all_pairs

    a = index.series[workload.sources[0]]
    b = index.series[workload.sources[1]]
    benchmark(lambda: kappa_j(a, b, match_threshold=0.2))
