"""Shared infrastructure for the figure/table benchmarks.

Every bench prints the same rows/series the paper's corresponding figure
charts (via the capture-disabled ``report`` fixture, so the tables land in
``pytest benchmarks/ --benchmark-only`` output and in
``benchmarks/results/<name>.txt``), and times one representative operation
through pytest-benchmark.

Dataset / index construction is cached per configuration across the whole
bench session because several figures share the same snapshots.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.community import CommunityConfig, build_workload, generate_community
from repro.community.workload import Workload, select_source_videos
from repro.core import CommunityIndex, RecommenderConfig
from repro.evaluation import JudgePanel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scale factor mapping the paper's dataset sizes onto bench-runnable ones.
#: The paper sweeps 50-200 crawl hours; we sweep the same *relative* sizes
#: at EFFICIENCY_SCALE of the volume (the shapes — who is faster, how cost
#: grows — are scale-free).  Override with REPRO_BENCH_SCALE=1.0 for a
#: full-size run.
EFFICIENCY_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))

#: Hours used by the effectiveness benches (Figs. 7-11).
EFFECTIVENESS_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "20"))

_WORKLOAD_CACHE: dict[tuple, Workload] = {}
_INDEX_CACHE: dict[tuple, CommunityIndex] = {}


def effectiveness_workload(seed: int = 3) -> Workload:
    """The shared snapshot behind Figures 7-11."""
    key = ("eff", EFFECTIVENESS_HOURS, seed)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = build_workload(hours=EFFECTIVENESS_HOURS, seed=seed)
    return _WORKLOAD_CACHE[key]


def effectiveness_index(
    k: int = 60, build_lsb: bool = False, build_global_features: bool = False
) -> CommunityIndex:
    """A built index over the shared effectiveness snapshot."""
    key = ("effidx", EFFECTIVENESS_HOURS, k, build_lsb, build_global_features)
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = CommunityIndex(
            effectiveness_workload().dataset,
            RecommenderConfig(k=k),
            build_lsb=build_lsb,
            build_global_features=build_global_features,
        )
    return _INDEX_CACHE[key]


def dense_efficiency_workload(paper_hours: float, seed: int = 7) -> Workload:
    """Dense-comment snapshots for the Figure 12 efficiency experiments.

    The paper's descriptors carry "several hundreds to tens thousands" of
    users; the efficiency story (quadratic exact sJ vs linear SAR) only
    shows at that density, so these snapshots trade video volume
    (``EFFICIENCY_SCALE``) for per-video comment volume.
    """
    key = ("dense", paper_hours, seed)
    if key not in _WORKLOAD_CACHE:
        config = CommunityConfig(
            hours=paper_hours * EFFICIENCY_SCALE,
            seed=seed,
            users_per_topic=120,
            groups_per_topic=6,
            comments_mean=160.0,
            comments_cap=320,
            clip_num_shots=2,
            clip_frames_per_shot=(6, 10),
            clip_height=16,
            clip_width=16,
        )
        dataset = generate_community(config)
        _WORKLOAD_CACHE[key] = Workload(
            dataset=dataset, sources=select_source_videos(dataset)
        )
    return _WORKLOAD_CACHE[key]


def dense_efficiency_index(paper_hours: float, k: int = 60) -> CommunityIndex:
    """Built index over a dense efficiency snapshot (content + social)."""
    key = ("denseidx", paper_hours, k)
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = CommunityIndex(
            dense_efficiency_workload(paper_hours).dataset,
            # The pair cap bounds the quadratic UIG edge generation on the
            # dense descriptors; it only affects index construction, never
            # the per-query costs Figure 12 measures.
            RecommenderConfig(k=k, uig_pair_cap=24),
            build_lsb=False,
            build_global_features=False,
        )
    return _INDEX_CACHE[key]


@pytest.fixture()
def report(request):
    """Print a figure table bypassing pytest capture + persist it to disk.

    Every persisted result file ends with a provenance footer recording
    which scoring engine produced the numbers (pass ``engine=`` from the
    bench; defaults to the config default) and the bench's wall-clock
    seconds up to the report call — so the Figure-12 result files state
    unambiguously which path they measured.
    """
    import time

    from repro.core import RecommenderConfig

    manager = request.config.pluginmanager.getplugin("capturemanager")
    RESULTS_DIR.mkdir(exist_ok=True)
    bench_name = request.node.name
    started = time.perf_counter()

    def _report(text: str, engine: str | None = None) -> None:
        footer = (
            f"-- engine={engine or RecommenderConfig().engine} "
            f"wall_clock_s={time.perf_counter() - started:.3f}"
        )
        banner = f"\n===== {bench_name} =====\n{text}\n{footer}\n"
        if manager is not None:
            with manager.global_and_fixture_disabled():
                print(banner)
        else:  # pragma: no cover - capture always available under pytest
            print(banner)
        with open(RESULTS_DIR / f"{bench_name}.txt", "w") as handle:
            handle.write(text + "\n" + footer + "\n")

    return _report


@pytest.fixture()
def panel():
    """Judge panel over the shared effectiveness snapshot."""
    return JudgePanel(effectiveness_workload().dataset)
