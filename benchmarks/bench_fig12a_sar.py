"""Figure 12(a) — effect of the social relevance optimisations on time.

Regenerates the paper's Figure 12(a): average recommendation time of
(1) CSF (exact quadratic social relevance), (2) CSF-SAR (sorted-dictionary
vectorization + linear s̃J) and (3) CSF-SAR-H (chained-hash vectorization),
over dataset sizes equivalent to the paper's 50-200 crawl hours (scaled by
REPRO_BENCH_SCALE; dense per-video comment volumes as in the paper's
"several hundreds" of users per descriptor).  Expected shape:
CSF ≫ CSF-SAR ≥ CSF-SAR-H at every size, with CSF's gap growing.
"""

from conftest import dense_efficiency_index, dense_efficiency_workload

from repro.core.recommender import (
    csf_recommender,
    csf_sar_h_recommender,
    csf_sar_recommender,
)
from repro.evaluation.harness import Timer

PAPER_HOURS = (50, 100, 150, 200)
QUERIES_PER_SIZE = 3


def _average_query_seconds(recommender, sources) -> float:
    recommender.recommend(sources[0], 10)  # warm caches before timing
    with Timer() as timer:
        for source in sources[:QUERIES_PER_SIZE]:
            recommender.recommend(source, 10)
    return timer.seconds / QUERIES_PER_SIZE


def test_fig12a_social_optimisation(benchmark, report):
    lines = [f"{'hours':>6} {'CSF (s)':>10} {'CSF-SAR (s)':>12} {'CSF-SAR-H (s)':>14}"]
    lines.append("-" * 46)
    rows = {}
    for hours in PAPER_HOURS:
        workload = dense_efficiency_workload(hours)
        index = dense_efficiency_index(hours)
        # The scalar engine is the measured path on purpose: this figure's
        # whole point is the *per-candidate* vectorization cost that the
        # batch engine's precomputed SAR matrix would amortise away.
        timings = {
            "CSF": _average_query_seconds(
                csf_recommender(index, engine="scalar"), workload.sources
            ),
            "CSF-SAR": _average_query_seconds(
                csf_sar_recommender(index, engine="scalar"), workload.sources
            ),
            "CSF-SAR-H": _average_query_seconds(
                csf_sar_h_recommender(index, engine="scalar"), workload.sources
            ),
        }
        rows[hours] = timings
        lines.append(
            f"{hours:>6} {timings['CSF']:>10.4f} {timings['CSF-SAR']:>12.4f} "
            f"{timings['CSF-SAR-H']:>14.4f}"
        )

    largest = rows[PAPER_HOURS[-1]]
    shape = largest["CSF"] > largest["CSF-SAR"] and largest["CSF"] > largest["CSF-SAR-H"]
    lines.append(
        f"\nshape check at {PAPER_HOURS[-1]}h (CSF slowest, SAR variants close): {shape}; "
        f"CSF / CSF-SAR-H speed ratio: {largest['CSF'] / max(largest['CSF-SAR-H'], 1e-9):.1f}x"
    )
    report("\n".join(lines), engine="scalar")
    assert shape

    index = dense_efficiency_index(PAPER_HOURS[0])
    workload = dense_efficiency_workload(PAPER_HOURS[0])
    sar_h = csf_sar_h_recommender(index, engine="scalar")
    benchmark(lambda: sar_h.recommend(workload.sources[0], 10))
