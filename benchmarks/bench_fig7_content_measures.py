"""Figure 7 — effect of content relevance measures (ERP vs DTW vs κJ).

Regenerates the paper's Figure 7(a)-(c): AR, AC and MAP at top 5/10/20 for
content-only recommendation under the three candidate similarity measures.
Expected shape: κJ best on every metric (its set semantics shrug off the
sequence re-editing that breaks whole-sequence alignment), with DTW ahead
of ERP.
"""

from conftest import effectiveness_index, effectiveness_workload

from repro.core.recommender import FusionRecommender
from repro.evaluation import evaluate_method, format_table


def test_fig7_content_measures(benchmark, report, panel):
    workload = effectiveness_workload()
    index = effectiveness_index(k=60)
    reports = []
    for name, measure in (("ERP", "erp"), ("DTW", "dtw"), ("kJ", "kj")):
        recommender = FusionRecommender(
            index, omega=0.0, content_measure=measure, name=name
        )
        reports.append(
            evaluate_method(name, recommender.recommend, workload.sources, panel)
        )
    table = format_table(reports)
    by_name = {r.method: r for r in reports}

    def mean_ar(method):
        return sum(by_name[method].row(k).ar for k in (5, 10, 20)) / 3

    shape = mean_ar("kJ") >= mean_ar("DTW") and mean_ar("kJ") >= mean_ar("ERP")
    report(
        table
        + f"\n\nmean AR across cut-offs: kJ {mean_ar('kJ'):.3f}, "
        f"DTW {mean_ar('DTW'):.3f}, ERP {mean_ar('ERP'):.3f}"
        f"\nshape check (kJ best on mean AR): {shape}"
    )
    assert shape

    kj = FusionRecommender(index, omega=0.0, content_measure="kj")
    benchmark(lambda: kj.recommend(workload.sources[0], 10))
