"""Ablation — LSB index vs exhaustive scan (paper Fig. 6 rationale).

The K-top-score search trades recall for sub-linear candidate access.
This bench measures both sides of that trade on the shared snapshot:
query latency of the index-backed search vs the exhaustive SAR-H scan,
and top-10 overlap between the two rankings.
"""

import numpy as np
from conftest import effectiveness_index, effectiveness_workload

from repro.core.knn import KTopScoreVideoSearch
from repro.core.recommender import csf_sar_h_recommender
from repro.evaluation.harness import Timer


def test_ablation_lsh_index_vs_exhaustive(benchmark, report):
    workload = effectiveness_workload()
    index = effectiveness_index(k=60, build_lsb=True)
    knn = KTopScoreVideoSearch(index)
    exhaustive = csf_sar_h_recommender(index)

    # Warm caches.
    knn.recommend(workload.sources[0], 10)
    exhaustive.recommend(workload.sources[0], 10)

    overlaps = []
    with Timer() as knn_timer:
        knn_lists = {s: knn.recommend(s, 10) for s in workload.sources}
    with Timer() as full_timer:
        full_lists = {s: exhaustive.recommend(s, 10) for s in workload.sources}
    for source in workload.sources:
        overlaps.append(len(set(knn_lists[source]) & set(full_lists[source])) / 10)

    n = len(workload.sources)
    recall = float(np.mean(overlaps))
    speedup = full_timer.seconds / max(knn_timer.seconds, 1e-9)
    report(
        f"{'':<18} {'s/query':>9}\n"
        f"{'exhaustive scan':<18} {full_timer.seconds / n:>9.4f}\n"
        f"{'LSB-backed KNN':<18} {knn_timer.seconds / n:>9.4f}\n\n"
        f"top-10 overlap with exhaustive: {recall:.2f}\n"
        f"speedup: {speedup:.1f}x\n"
        f"shape check (recall >= 0.6 while not slower than exhaustive / 0.8): "
        f"{recall >= 0.6 and speedup >= 0.8}"
    )
    assert recall >= 0.6
    assert speedup >= 0.8

    benchmark(lambda: knn.recommend(workload.sources[0], 10))
