"""Ablation — user -> sub-community mapping backend (DESIGN.md §5.4).

Micro-benchmark of the three mapping structures behind SAR vectorization:
the paper's chained hash table with shift-add-xor hashing (SAR-H), the
sorted user dictionary with binary search (plain SAR), and — as the
engineering upper bound — a raw Python dict.  Expected: hash beats binary
search; the builtin dict bounds both (it is the same idea as SAR-H with
interpreter-level constants).
"""

import numpy as np
from conftest import effectiveness_index

from repro.evaluation.harness import Timer
from repro.social.sar import SortedUserDictionary, hash_dictionary_from_partition
from repro.social.subcommunity import Partition


class _DictLookup:
    """Raw-dict reference backend."""

    def __init__(self, membership):
        self._mapping = dict(membership)

    def lookup(self, key):
        return self._mapping.get(key)


def test_ablation_mapping_backends(benchmark, report):
    index = effectiveness_index(k=60)
    membership = {
        user: cno
        for cno, members in index.social.communities.items()
        for user in members
    }
    partition = Partition(list(index.social.communities.values()))
    backends = {
        "chained hash (SAR-H)": hash_dictionary_from_partition(partition),
        "sorted dict (SAR)": SortedUserDictionary(membership),
        "python dict (bound)": _DictLookup(membership),
    }

    users = sorted(membership)
    rng = np.random.default_rng(0)
    probes = [users[int(i)] for i in rng.integers(0, len(users), size=20_000)]
    probes += [f"missing{i}" for i in range(2_000)]

    lines = [f"{'backend':<22} {'ns/lookup':>10} {'all agree':>10}"]
    lines.append("-" * 46)
    reference = None
    timings = {}
    for name, backend in backends.items():
        results = [backend.lookup(probe) for probe in probes]  # warm + capture
        with Timer() as timer:
            for probe in probes:
                backend.lookup(probe)
        timings[name] = timer.seconds / len(probes)
        agree = reference is None or results == reference
        reference = reference or results
        lines.append(f"{name:<22} {timings[name] * 1e9:>10.0f} {str(agree):>10}")
        assert agree

    hash_beats_sorted = timings["chained hash (SAR-H)"] <= timings["sorted dict (SAR)"]
    lines.append(f"\nshape check (chained hash <= sorted dict): {hash_beats_sorted}")
    report("\n".join(lines))
    assert hash_beats_sorted

    table = backends["chained hash (SAR-H)"]
    benchmark(lambda: table.lookup(probes[0]))
