"""Figure 10 — effectiveness comparison: AFFRF vs CR vs SR vs CSF.

Regenerates the paper's Figure 10(a)-(c): AR, AC and MAP at top 5/10/20 for
the two proposed alternatives (SR, CSF) against the two published
competitors (CR [35], AFFRF [33]), at the tuned ω = 0.7 and k = 60.
Expected shape: CSF best on every metric; SR strong but noisier; CR found
only content matches; AFFRF last (global features crumble under edits, no
social signal).
"""

from conftest import effectiveness_index, effectiveness_workload

from repro.core import AffrfRecommender
from repro.core.recommender import (
    content_recommender,
    csf_recommender,
    social_recommender,
)
from repro.evaluation import evaluate_method, format_table


def test_fig10_method_comparison(benchmark, report, panel):
    workload = effectiveness_workload()
    index = effectiveness_index(k=60, build_global_features=True)
    recommenders = (
        AffrfRecommender(index),
        content_recommender(index),
        social_recommender(index),
        csf_recommender(index),
    )
    reports = [
        evaluate_method(r.name, r.recommend, workload.sources, panel)
        for r in recommenders
    ]
    table = format_table(reports)
    by_name = {r.method: r for r in reports}
    csf_wins = all(
        by_name["CSF"].row(k).ar >= max(
            by_name["SR"].row(k).ar, by_name["CR"].row(k).ar, by_name["AFFRF"].row(k).ar
        ) - 0.05
        for k in (5, 10, 20)
    )
    report(table + f"\n\nshape check (CSF best AR at every cut-off, 0.05 tol): {csf_wins}")
    assert csf_wins

    csf = csf_recommender(index)
    benchmark(lambda: csf.recommend(workload.sources[0], 10))
