"""HTTP serving benchmark: RPS and latency over the wire, plus the soak.

Three phases:

1. **hit mix** — an in-process :class:`ReproHTTPServer` with the
   epoch-keyed response cache enabled, hammered by concurrent
   :class:`RetryingClient` threads over a small hot set of videos, so
   steady state is nearly all cache hits;
2. **miss mix** — the same load against a server with the cache disabled
   (``cache_capacity=0``), so every request runs the full admission +
   chunked-scan path;
3. **netchaos soak** — the multi-process soak from
   :mod:`repro.testing.netchaos`: a real ``repro serve`` subprocess
   under chaos slow/abort injection, SIGTERMed mid-load and restarted on
   the same port, with exactly-once interaction accounting and
   bit-identical oracle replay of every 200.

The run writes ``BENCH_http_serving.json`` at the repo root (uploaded by
CI).  ``--smoke --ci`` additionally fails if the per-request wall clock
regresses more than 2x over ``benchmarks/perf_floor.json``.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_http_serving.py
[--smoke] [--ci]``) or under pytest (``pytest
benchmarks/bench_http_serving.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import threading
import time

from repro.community import CommunityConfig, generate_community
from repro.core import CommunityIndex, RecommenderConfig
from repro.net import (
    InteractionLog,
    NetConfig,
    RecommendService,
    ReproHTTPServer,
    RetryingClient,
    RetryPolicy,
)
from repro.obs import percentiles
from repro.serving import ServingGateway
from repro.testing.netchaos import NetChaosConfig, run_net_soak

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_http_serving.json"
FLOOR_PATH = REPO_ROOT / "benchmarks" / "perf_floor.json"

DEFAULT_QUERIES = 3_000
DEFAULT_SOAK_QUERIES = 12_000
DEFAULT_CLIENTS = 4
DEFAULT_SEED = 2015


def _run_phase(
    index,
    tmp_path: pathlib.Path,
    queries: int,
    clients: int,
    cache_capacity: int,
    hot_videos: int,
    seed: int,
) -> dict:
    """One latency phase; returns RPS + per-request percentiles."""
    service = RecommendService(
        ServingGateway(index),
        InteractionLog(tmp_path / f"bench_cache{cache_capacity}.wal", sync=False),
        NetConfig(cache_capacity=cache_capacity),
    )
    videos = sorted(index.series)[:hot_videos]
    per_client = [
        queries // clients + (1 if c < queries % clients else 0)
        for c in range(clients)
    ]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    cache_hits = [0] * clients

    with ReproHTTPServer(service) as server:

        def worker(worker_id: int) -> None:
            client = RetryingClient(
                server.url,
                RetryPolicy(attempts=2),
                client_id=f"bench-{worker_id}",
                seed=seed + worker_id,
            )
            for i in range(per_client[worker_id]):
                video = videos[(worker_id + i) % len(videos)]
                started = time.perf_counter()
                response = client.recommend(video, top_k=10)
                latencies[worker_id].append(
                    (time.perf_counter() - started) * 1000.0
                )
                if response.header("X-Cache") == "hit":
                    cache_hits[worker_id] += 1

        threads = [
            threading.Thread(target=worker, args=(c,), daemon=True)
            for c in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    flat = [ms for worker in latencies for ms in worker]
    stats = percentiles(flat, (50.0, 99.0))
    return {
        "queries": len(flat),
        "clients": clients,
        "cache_capacity": cache_capacity,
        "hit_rate": sum(cache_hits) / max(1, len(flat)),
        "rps": len(flat) / elapsed,
        "seconds_per_query": (sum(flat) / 1000.0) / max(1, len(flat)),
        "p50_ms": stats["p50"],
        "p99_ms": stats["p99"],
        "elapsed_seconds": elapsed,
    }


def run_bench(
    queries: int = DEFAULT_QUERIES,
    soak_queries: int = DEFAULT_SOAK_QUERIES,
    clients: int = DEFAULT_CLIENTS,
    hours: float = 2.0,
    seed: int = DEFAULT_SEED,
    json_path: pathlib.Path | None = JSON_PATH,
    workdir: pathlib.Path | None = None,
) -> dict:
    import tempfile

    tmp = pathlib.Path(workdir or tempfile.mkdtemp(prefix="bench-http-"))
    dataset = generate_community(CommunityConfig(hours=hours, seed=seed))
    index = CommunityIndex(dataset, RecommenderConfig())
    hit = _run_phase(
        index, tmp, queries, clients, cache_capacity=4096, hot_videos=8, seed=seed
    )
    miss = _run_phase(
        index, tmp, queries, clients, cache_capacity=0, hot_videos=8, seed=seed
    )
    soak = run_net_soak(
        NetChaosConfig(
            queries=soak_queries,
            loadgens=2,
            concurrency=clients,
            interact_every=7,
            apply_every=25,
            seed=seed,
            hours=hours,
            chaos_slow_every=97,
            chaos_abort_every=61,
        )
    )
    payload = {
        "bench": "http_serving",
        "unix_time": time.time(),
        "videos": len(index.series),
        "hit_mix": hit,
        "miss_mix": miss,
        "soak": {
            "attempted": soak.attempted,
            "by_status": soak.by_status,
            "rps": soak.rps,
            "recommend_ok": soak.recommend_ok,
            "interactions_acked": soak.interactions_acked,
            "duplicates_detected": soak.duplicates_detected,
            "conn_errors": soak.conn_errors,
            "logged_records": soak.logged_records,
            "lost_acks": len(soak.lost_acks),
            "double_logged": len(soak.double_logged),
            "server_500s": soak.server_500s,
            "oracle_checked": soak.oracle_checked,
            "oracle_failures": len(soak.oracle_failures),
            "server_exits": soak.server_exits,
            "restarts": soak.restarts,
            "replayed_on_restart": soak.replayed_on_restart,
            "served_at_sigterm": soak.served_at_sigterm,
            "hit_latency_ms": soak.hit_latency_ms,
            "miss_latency_ms": soak.miss_latency_ms,
            "elapsed_seconds": soak.elapsed_seconds,
            "ok": soak.ok,
        },
        "ok": soak.ok,
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def format_summary(payload: dict) -> str:
    hit, miss, soak = payload["hit_mix"], payload["miss_mix"], payload["soak"]
    statuses = ", ".join(
        f"{n} x{s}" for s, n in sorted(soak["by_status"].items())
    )
    return (
        f"hit mix:  {hit['queries']} queries, {hit['rps']:.0f} rps, "
        f"p50 {hit['p50_ms']:.2f} ms, p99 {hit['p99_ms']:.2f} ms "
        f"(hit rate {hit['hit_rate'] * 100:.0f}%)\n"
        f"miss mix: {miss['queries']} queries, {miss['rps']:.0f} rps, "
        f"p50 {miss['p50_ms']:.2f} ms, p99 {miss['p99_ms']:.2f} ms\n"
        f"soak: {soak['attempted']} attempted ({statuses}); "
        f"{soak['interactions_acked']} acked / {soak['logged_records']} logged / "
        f"{soak['duplicates_detected']} dup-acked; "
        f"lost={soak['lost_acks']} double={soak['double_logged']} "
        f"500s={soak['server_500s']}\n"
        f"soak oracle: {soak['oracle_checked'] - soak['oracle_failures']}"
        f"/{soak['oracle_checked']} bit-identical; "
        f"drains exit {soak['server_exits']}, "
        f"{soak['replayed_on_restart']} replayed on restart\n"
        f"ok={payload['ok']} "
        f"({soak['elapsed_seconds']:.1f}s soak, {soak['rps']:.0f} rps)"
    )


def check_floor(payload: dict, floor_path: pathlib.Path = FLOOR_PATH) -> list[str]:
    """Regression check against the checked-in floor (``--ci``)."""
    floors = json.loads(floor_path.read_text())["floors"]
    observed = {
        "http_hit_seconds_per_query": payload["hit_mix"]["seconds_per_query"],
        "http_miss_seconds_per_query": payload["miss_mix"]["seconds_per_query"],
    }
    violations = []
    for name, floor in floors.items():
        value = observed.get(name)
        if value is not None and value > 2.0 * floor:
            violations.append(
                f"{name}: {value:.6f}s is more than 2x the floor {floor:.6f}s"
            )
    return violations


def test_http_serving(report, tmp_path):
    # Bench-sized run; the acceptance-scale soak lives in
    # tests/test_netchaos.py and the standalone full run.
    payload = run_bench(
        queries=400, soak_queries=600, json_path=None, workdir=tmp_path
    )
    report(format_summary(payload), engine="http")
    assert payload["ok"], payload["soak"]
    assert payload["hit_mix"]["hit_rate"] > 0.8
    assert payload["hit_mix"]["p50_ms"] < payload["miss_mix"]["p99_ms"]
    assert payload["soak"]["lost_acks"] == 0
    assert payload["soak"]["double_logged"] == 0
    assert payload["soak"]["oracle_failures"] == 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--soak-queries", type=int, default=DEFAULT_SOAK_QUERIES)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="write the payload JSON here (default: repo-root BENCH file)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down run for CI: 600 latency queries/mix, 1000-query soak",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="fail if seconds_per_query regresses >2x over benchmarks/perf_floor.json",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_bench(
            queries=600,
            soak_queries=1_000,
            seed=args.seed,
            json_path=args.json or JSON_PATH,
        )
    else:
        payload = run_bench(
            queries=args.queries,
            soak_queries=args.soak_queries,
            clients=args.clients,
            seed=args.seed,
            json_path=args.json or JSON_PATH,
        )
    print(format_summary(payload))
    if not payload["ok"]:
        raise SystemExit("http serving soak failed")
    if args.ci:
        violations = check_floor(payload)
        if violations:
            raise SystemExit("perf floor regression:\n  " + "\n  ".join(violations))
        print("perf floor check: ok")


if __name__ == "__main__":
    main()
