"""Ablation — EMD solver choice (DESIGN.md §5.1).

The production content path uses the O(n log n) closed form for 1-D
cluster values; the from-scratch transportation simplex and the scipy LP
are kept for validation and non-scalar extensions.  This bench verifies
all three agree on real cuboid signatures and quantifies the speed gap
that justifies the closed-form default.
"""


from conftest import effectiveness_index

from repro.emd import emd_1d, emd_exact, emd_linprog
from repro.evaluation.harness import Timer


def _signature_pairs(index, count: int = 40):
    video_ids = index.video_ids
    pairs = []
    for offset in range(count):
        first = index.series[video_ids[offset % len(video_ids)]][0]
        second = index.series[video_ids[(offset * 7 + 1) % len(video_ids)]][0]
        pairs.append((first, second))
    return pairs


def test_ablation_emd_solvers(benchmark, report):
    index = effectiveness_index(k=60)
    pairs = _signature_pairs(index)

    gaps_simplex = []
    gaps_lp = []
    timings = {}
    for name, solver in (
        ("closed-form 1-D", emd_1d),
        ("transportation simplex", emd_exact),
        ("scipy linprog", emd_linprog),
    ):
        with Timer() as timer:
            values = [
                solver(a.values, a.weights, b.values, b.weights) for a, b in pairs
            ]
        timings[name] = timer.seconds / len(pairs)
        if name == "closed-form 1-D":
            reference = values
        elif name == "transportation simplex":
            gaps_simplex = [abs(x - y) for x, y in zip(values, reference)]
        else:
            gaps_lp = [abs(x - y) for x, y in zip(values, reference)]

    lines = [f"{'solver':<24} {'us/pair':>10}"]
    lines.append("-" * 36)
    for name, seconds in timings.items():
        lines.append(f"{name:<24} {seconds * 1e6:>10.1f}")
    lines.append(
        f"\nmax |simplex - closed| = {max(gaps_simplex):.2e}; "
        f"max |linprog - closed| = {max(gaps_lp):.2e}"
    )
    speedup = timings["transportation simplex"] / timings["closed-form 1-D"]
    lines.append(f"closed form is {speedup:.0f}x faster than the simplex")
    report("\n".join(lines))
    assert max(gaps_simplex) < 1e-6
    assert max(gaps_lp) < 1e-6

    a, b = pairs[0]
    benchmark(lambda: emd_1d(a.values, a.weights, b.values, b.weights))
