"""Live-maintenance throughput: incremental ingest vs full rebuild.

The store refactor's economic claim: indexing one new video through
:class:`~repro.core.pipeline.LiveCommunityIndex` costs a small constant
amount of extraction plus a deterministic social re-derivation, instead of
the full N-video rebuild a frozen index forces.  This bench measures, on a
seeded generator community:

* the wall-clock cost of one cold :class:`CommunityIndex` build (with the
  serving structures — signature bank, SAR matrix — materialised);
* the per-video cost of incremental ``ingest_video`` with the same
  serving structures refreshed after every ingest (the worst case: no
  batching of the social re-derivation);
* the per-video cost of ``retire_video`` under the same regime;
* ranking parity between the churned live index and the cold rebuild.

Besides the human-readable table, the run writes a machine-readable
``BENCH_ingest_throughput.json`` at the repo root so future PRs can track
the maintenance-cost trajectory.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_ingest_throughput.py
[--smoke]``) or under pytest (``pytest benchmarks/bench_ingest_throughput.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.community import build_workload
from repro.core import CommunityIndex, LiveCommunityIndex, RecommenderConfig
from repro.core.recommender import FusionRecommender

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_ingest_throughput.json"

#: The acceptance target measures the N=200 community.
DEFAULT_VIDEOS = 200
DEFAULT_SEED = 5
DEFAULT_CHURN = 10
#: The generator produces 12 videos per community-hour.
VIDEOS_PER_HOUR = 12


def _materialize(index: CommunityIndex) -> None:
    """Force every lazily derived serving structure to exist."""
    index.signature_bank()
    index.sar_matrix("sar-h")


def _leaf_ids(dataset) -> list[str]:
    parents = {
        record.lineage for record in dataset.records.values() if record.lineage
    }
    return sorted(vid for vid in dataset.records if vid not in parents)


def run_ingest_throughput(
    videos: int = DEFAULT_VIDEOS,
    seed: int = DEFAULT_SEED,
    churn: int = DEFAULT_CHURN,
    json_path: pathlib.Path | None = JSON_PATH,
) -> dict:
    """Time rebuild vs incremental maintenance; return the result payload."""
    workload = build_workload(hours=videos / VIDEOS_PER_HOUR, seed=seed)
    dataset = workload.dataset
    config = RecommenderConfig(k=12)
    pending = _leaf_ids(dataset)[-churn:]
    initial = sorted(set(dataset.records) - set(pending))

    # Cold rebuild of the FULL community — the cost a frozen index pays for
    # every catalogue change, and the parity reference for the live run.
    started = time.perf_counter()
    cold = CommunityIndex(dataset, config)
    _materialize(cold)
    rebuild_seconds = time.perf_counter() - started

    # Live path: start one churn-batch short, then ingest video by video,
    # refreshing the serving structures after every single ingest.
    live = LiveCommunityIndex(dataset.subset(initial), config)
    live.dataset.comments = list(dataset.comments)
    _materialize(live)
    started = time.perf_counter()
    for video_id in pending:
        live.ingest_video(dataset.records[video_id])
        _materialize(live)
    ingest_seconds = time.perf_counter() - started

    recommender = FusionRecommender(live, social_mode="sar-h", engine="batch")
    reference = FusionRecommender(cold, social_mode="sar-h", engine="batch")
    parity = all(
        recommender.recommend(query, 10) == reference.recommend(query, 10)
        for query in cold.video_ids[:: max(1, len(cold.video_ids) // 3)]
    )

    started = time.perf_counter()
    for video_id in pending:
        live.retire_video(video_id)
        _materialize(live)
    retire_seconds = time.perf_counter() - started

    payload = {
        "bench": "ingest_throughput",
        "unix_time": time.time(),
        "community": {
            "videos": len(dataset.records),
            "seed": seed,
            "churn_batch": len(pending),
        },
        "rebuild_seconds": rebuild_seconds,
        "ingest": {
            "seconds_per_video": ingest_seconds / len(pending),
            "videos_per_second": len(pending) / ingest_seconds,
        },
        "retire": {
            "seconds_per_video": retire_seconds / len(pending),
            "videos_per_second": len(pending) / retire_seconds,
        },
        "speedup_ingest_vs_rebuild": rebuild_seconds
        / (ingest_seconds / len(pending)),
        "ranking_parity": parity,
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def format_table(payload: dict) -> str:
    ingest = payload["ingest"]
    retire = payload["retire"]
    lines = [
        f"{'operation':>16} {'s/video':>10} {'videos/s':>10}",
        "-" * 38,
        f"{'full rebuild':>16} {payload['rebuild_seconds']:>10.3f} {'-':>10}",
        f"{'ingest':>16} {ingest['seconds_per_video']:>10.3f} "
        f"{ingest['videos_per_second']:>10.2f}",
        f"{'retire':>16} {retire['seconds_per_video']:>10.3f} "
        f"{retire['videos_per_second']:>10.2f}",
        f"\ningest speedup vs rebuild: "
        f"{payload['speedup_ingest_vs_rebuild']:.1f}x; "
        f"ranking parity: {payload['ranking_parity']}",
    ]
    return "\n".join(lines)


def test_ingest_throughput(report):
    # Smoke scale: the acceptance JSON is produced by the standalone run at
    # N=200; here we only pin the shape (parity + a conservative speedup).
    payload = run_ingest_throughput(videos=48, churn=6, json_path=None)
    report(format_table(payload), engine="batch")
    assert payload["ranking_parity"]
    assert payload["speedup_ingest_vs_rebuild"] >= 5.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--videos", type=int, default=DEFAULT_VIDEOS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--churn", type=int, default=DEFAULT_CHURN)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny community, no JSON output — CI sanity run",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_ingest_throughput(videos=36, churn=4, json_path=None)
    else:
        payload = run_ingest_throughput(
            videos=args.videos, seed=args.seed, churn=args.churn
        )
    print(format_table(payload))
    if not payload["ranking_parity"]:
        raise SystemExit("live index rankings diverged from cold rebuild")
    if payload["speedup_ingest_vs_rebuild"] < 5.0:
        raise SystemExit("incremental ingest slower than the 5x acceptance bar")


if __name__ == "__main__":
    main()
