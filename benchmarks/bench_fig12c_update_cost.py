"""Figure 12(c) — efficiency of social updates.

Regenerates the paper's Figure 12(c): the time cost of maintaining the
sub-communities (union / split + chained-hash + descriptor-vector updates,
Section 4.2.4) as the held-out comment stream is applied month by month to
the dense 200-hour-equivalent snapshot.  Maintenance is incremental (the
paper's own design), so the cost of an n-month window is the accumulated
cost of its monthly batches.  Expected shape: cumulative cost grows
roughly linearly with the window, per the Eq. 8 cost model.  (The paper
reports hundreds of seconds for 1-3 months and ~1500 s for 4 — the same
order of magnitude this bench lands in at REPRO_BENCH_SCALE=1.)
"""

from conftest import dense_efficiency_index, dense_efficiency_workload

from repro.core import CommunityIndex, RecommenderConfig
from repro.evaluation.harness import Timer

PAPER_HOURS = 200


def test_fig12c_update_cost(benchmark, report):
    workload = dense_efficiency_workload(PAPER_HOURS)
    dataset = workload.dataset
    index = CommunityIndex(
        dataset,
        RecommenderConfig(k=60, uig_pair_cap=24),
        build_lsb=False,
        build_global_features=False,
    )

    lines = [
        f"{'months':>6} {'connections':>12} {'cumulative s':>13} {'unions':>7} {'splits':>7}"
    ]
    lines.append("-" * 52)
    cumulative_seconds = 0.0
    cumulative_connections = 0
    cumulative_unions = 0
    cumulative_splits = 0
    series = []
    for months in (1, 2, 3, 4):
        month = 11 + months
        batch = [
            (comment.user_id, comment.video_id)
            for comment in dataset.comments_between(month, month)
        ]
        with Timer() as timer:
            stats = index.social.apply_comments(batch)
        cumulative_seconds += timer.seconds
        cumulative_connections += stats.connections
        cumulative_unions += stats.unions
        cumulative_splits += stats.splits
        series.append(cumulative_seconds)
        lines.append(
            f"{months:>6} {cumulative_connections:>12} {cumulative_seconds:>13.3f} "
            f"{cumulative_unions:>7} {cumulative_splits:>7}"
        )

    growing = all(later >= earlier for earlier, later in zip(series, series[1:]))
    lines.append(
        f"\nshape check (cumulative cost grows with the window, ~linear): {growing}; "
        f"4-month / 1-month ratio: {series[-1] / max(series[0], 1e-9):.1f}x"
    )
    report("\n".join(lines))
    assert growing

    small_index = dense_efficiency_index(50)
    one_month = [
        (comment.user_id, comment.video_id)
        for comment in dense_efficiency_workload(50).dataset.comments_between(12, 12)
    ]
    benchmark(lambda: small_index.social.apply_comments(one_month[:5]))
