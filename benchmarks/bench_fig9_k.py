"""Figure 9 — effect of the sub-community count k on SAR effectiveness.

Regenerates the paper's Figure 9(a)-(c): AR, AC and MAP of the SAR-based
recommendation as k sweeps 20 -> 80 (ω fixed at its 0.7 optimum).
Expected shape: effectiveness improves from k = 20 to k = 60 (less
approximation loss as histograms get finer) and roughly plateaus after.
"""

from conftest import effectiveness_index, effectiveness_workload

from repro.core.recommender import csf_sar_h_recommender
from repro.evaluation import evaluate_method

K_VALUES = (20, 40, 60, 80)


def test_fig9_k_sweep(benchmark, report, panel):
    workload = effectiveness_workload()
    lines = [f"{'k':>4}" + "".join(f"  AR@{k:<4} AC@{k:<4} MAP@{k:<3}" for k in (5, 10, 20))]
    lines.append("-" * len(lines[0]))
    ar10 = {}
    for k in K_VALUES:
        index = effectiveness_index(k=k)
        recommender = csf_sar_h_recommender(index)
        result = evaluate_method(
            f"k={k}", recommender.recommend, workload.sources, panel
        )
        cells = "".join(
            f"  {result.row(c).ar:6.3f} {result.row(c).ac:6.3f} {result.row(c).map:7.3f}"
            for c in (5, 10, 20)
        )
        lines.append(f"{k:>4}{cells}")
        ar10[k] = result.row(10).ar

    rising = ar10[60] > ar10[20]
    plateau = abs(ar10[80] - ar10[60]) < (ar10[60] - ar10[20])
    lines.append(
        f"\nshape check: rising 20->60 ({rising}), "
        f"flatter 60->80 than 20->60 ({plateau})"
    )
    report("\n".join(lines))
    assert rising

    index = effectiveness_index(k=60)
    recommender = csf_sar_h_recommender(index)
    benchmark(lambda: recommender.recommend(workload.sources[0], 10))
