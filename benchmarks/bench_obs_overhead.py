"""Instrumentation overhead: metrics enabled vs disabled on the N=200 scan.

The observability layer (``repro.obs``) claims to be cheap enough to leave
on in production serving.  This bench holds it to that: the same query
loop runs over the 200-video generator community once with a recording
:class:`~repro.obs.MetricsRegistry` installed and once with a disabled
one, taking the minimum over interleaved repeats of each, and asserts the
enabled path is within ``OVERHEAD_BUDGET`` (5%) of the disabled path.

Besides the human-readable summary, the run writes
``BENCH_obs_overhead.json`` (the timing comparison) and
``BENCH_metrics_snapshot.json`` (the full metrics snapshot of the enabled
pass — the artifact CI uploads) at the repo root.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py
[--smoke]``) or under pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.community import build_workload
from repro.core import CommunityIndex, RecommenderConfig
from repro.core.recommender import FusionRecommender
from repro.obs import MetricsRegistry, use_metrics

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_obs_overhead.json"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_metrics_snapshot.json"

#: ~200 videos from the generator (12 videos/hour).
DEFAULT_HOURS = 16.7
DEFAULT_SEED = 5
OVERHEAD_BUDGET = 0.05


def run_overhead(
    hours: float = DEFAULT_HOURS,
    seed: int = DEFAULT_SEED,
    queries: int = 50,
    top_k: int = 10,
    repeats: int = 5,
    json_path: pathlib.Path | None = JSON_PATH,
    snapshot_path: pathlib.Path | None = SNAPSHOT_PATH,
) -> dict:
    """Time the query loop with metrics on vs off and return the payload."""
    workload = build_workload(hours=hours, seed=seed)
    index = CommunityIndex(
        workload.dataset,
        RecommenderConfig(),
        build_lsb=False,
        build_global_features=False,
    )
    sources = index.video_ids[: max(1, queries)]
    recording = MetricsRegistry()
    registries = {"enabled": recording, "disabled": MetricsRegistry(enabled=False)}

    def one_pass(registry: MetricsRegistry) -> float:
        with use_metrics(registry):
            with FusionRecommender(
                index, social_mode="sar-h", content_measure="kj"
            ) as recommender:
                recommender.recommend(sources[0], top_k)  # warm-up
                started = time.perf_counter()
                for source in sources:
                    recommender.recommend(source, top_k)
                return time.perf_counter() - started

    # Interleave the repeats so drift (thermal, other load) hits both
    # modes equally; keep the minimum, the least-disturbed measurement.
    best = {label: float("inf") for label in registries}
    for _ in range(repeats):
        for label, registry in registries.items():
            best[label] = min(best[label], one_pass(registry))

    overhead = best["enabled"] / best["disabled"] - 1.0
    payload = {
        "bench": "obs_overhead",
        "unix_time": time.time(),
        "community": {
            "hours": hours,
            "seed": seed,
            "videos": len(index.video_ids),
            "queries_timed": len(sources),
            "top_k": top_k,
            "repeats": repeats,
        },
        "seconds_enabled": best["enabled"],
        "seconds_disabled": best["disabled"],
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "within_budget": overhead < OVERHEAD_BUDGET,
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if snapshot_path is not None:
        with open(snapshot_path, "w") as handle:
            json.dump(recording.snapshot(), handle, indent=2)
            handle.write("\n")
    return payload


def format_summary(payload: dict) -> str:
    community = payload["community"]
    return (
        f"videos={community['videos']} queries={community['queries_timed']} "
        f"repeats={community['repeats']}\n"
        f"metrics enabled : {payload['seconds_enabled']:.4f}s\n"
        f"metrics disabled: {payload['seconds_disabled']:.4f}s\n"
        f"overhead: {payload['overhead_fraction'] * 100:+.2f}% "
        f"(budget {payload['overhead_budget'] * 100:.0f}%) "
        f"within_budget={payload['within_budget']}"
    )


def test_obs_overhead(report):
    payload = run_overhead()
    report(format_summary(payload), engine="batch")
    assert payload["within_budget"], (
        f"instrumentation overhead {payload['overhead_fraction'] * 100:.2f}% "
        f"exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=DEFAULT_HOURS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer queries/repeats, still N=200 — the CI overhead check",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_overhead(queries=15, repeats=3)
    else:
        payload = run_overhead(
            hours=args.hours,
            seed=args.seed,
            queries=args.queries,
            repeats=args.repeats,
        )
    print(format_summary(payload))
    if not payload["within_budget"]:
        raise SystemExit("instrumentation overhead exceeded budget")


if __name__ == "__main__":
    main()
