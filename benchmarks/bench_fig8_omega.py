"""Figure 8 — effect of the fusion weight ω.

Regenerates the paper's Figure 8(a)-(c): AR, AC and MAP at top 5/10/20 as
ω sweeps 0 -> 1.  Expected shape: all metrics climb from ω = 0, peak around
ω = 0.7, and drop toward ω = 1 (pure social pulls in the multi-interest
noise).  Component scores are computed once and re-ranked per ω.
"""

from conftest import effectiveness_index, effectiveness_workload

from repro.core.recommender import FusionRecommender, rank_components
from repro.evaluation import evaluate_method

OMEGAS = [round(0.1 * i, 1) for i in range(11)]


def test_fig8_omega_sweep(benchmark, report, panel):
    workload = effectiveness_workload()
    index = effectiveness_index(k=60)
    scorer = FusionRecommender(index, omega=0.5, social_mode="exact")
    components = {
        source: scorer.component_scores(source) for source in workload.sources
    }

    lines = [f"{'omega':>5}" + "".join(f"  AR@{k:<4} AC@{k:<4} MAP@{k:<3}" for k in (5, 10, 20))]
    lines.append("-" * len(lines[0]))
    peak_omega, peak_ar = 0.0, -1.0
    for omega in OMEGAS:
        result = evaluate_method(
            f"omega={omega}",
            lambda query, top_k, omega=omega: rank_components(
                components[query], omega, top_k
            ),
            workload.sources,
            panel,
            exclude_query=False,  # components already exclude the query
        )
        cells = "".join(
            f"  {result.row(k).ar:6.3f} {result.row(k).ac:6.3f} {result.row(k).map:7.3f}"
            for k in (5, 10, 20)
        )
        lines.append(f"{omega:>5.1f}{cells}")
        if result.row(10).ar > peak_ar:
            peak_ar, peak_omega = result.row(10).ar, omega

    shape = 0.5 <= peak_omega <= 0.9
    lines.append(
        f"\npeak top-10 AR at omega={peak_omega} (paper: 0.7); "
        f"shape check (interior peak): {shape}"
    )
    report("\n".join(lines))
    assert shape

    benchmark(lambda: rank_components(components[workload.sources[0]], 0.7, 10))
