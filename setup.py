"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP 660
editable wheels; ``python setup.py develop`` keeps ``pip install -e .``-
equivalent installs working there.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
