#!/usr/bin/env python3
"""Quickstart: build a sharing community, index it, recommend videos.

This walks the full public API in one sitting:

1. generate a synthetic sharing community (the stand-in for a YouTube
   crawl — topics, videos with near-duplicate variants, users, comments);
2. build the :class:`CommunityIndex` (cuboid signatures, UIG partition,
   SAR vectors, chained hash table, LSB content index);
3. recommend with the paper's content-social fusion (CSF-SAR-H) for an
   anonymous user who just clicked a video;
4. score the recommendations with the simulated judge panel.

Run:  python examples/quickstart.py
"""

from repro.community import build_workload
from repro.core import (
    CommunityIndex,
    KTopScoreVideoSearch,
    RecommenderConfig,
    csf_sar_h_recommender,
)
from repro.evaluation import JudgePanel


def main() -> None:
    # 1. A 10-hour community (120 clips) seeded for reproducibility.
    workload = build_workload(hours=10.0, seed=42)
    dataset = workload.dataset
    print(
        f"community: {dataset.num_videos} videos, {dataset.num_users} users, "
        f"{len(dataset.comments)} comments across {len(dataset.topics)} topics"
    )

    # 2. Build every index the paper describes.  omega=0.7 and k=60 are the
    #    paper's tuned values; k is shrunk a little for this small corpus.
    config = RecommenderConfig(omega=0.7, k=40)
    index = CommunityIndex(dataset, config)
    print(
        f"index: {sum(len(s) for s in index.series.values())} cuboid signatures, "
        f"{index.social.k} sub-communities, "
        f"{len(index.lsb)} LSB entries"
    )

    # 3. An anonymous user clicked this video; recommend relevant ones.
    clicked = workload.sources[0]
    record = dataset.records[clicked]
    print(f"\nclicked video: {clicked} (topic: {dataset.topics[record.topic]!r})")

    recommender = csf_sar_h_recommender(index)
    recommendations = recommender.recommend(clicked, top_k=10)

    panel = JudgePanel(dataset)
    print("\nrank  video     grade  panel rating")
    for rank, video_id in enumerate(recommendations, start=1):
        grade = dataset.relevance_grade(clicked, video_id)
        label = {2: "near-dup ", 1: "same-topic", 0: "unrelated"}[grade]
        print(f"{rank:>4}  {video_id}  {label:<10} {panel.rate(clicked, video_id):.2f}")

    # 4. The same query through the index-backed KNN search (Figure 6).
    knn = KTopScoreVideoSearch(index)
    results = knn.search(clicked, top_k=5)
    print("\nindex-backed KNN (Fig. 6), top 5:")
    for result in results:
        print(
            f"  {result.video_id}: FJ={result.score:.3f} "
            f"(content={result.content:.3f}, social={result.social:.3f})"
        )


if __name__ == "__main__":
    main()
