#!/usr/bin/env python3
"""Scenario: a live community absorbing months of social updates.

Exercises the dynamics machinery of Section 4.2.4: the index is built on
the 12-month source year, then the held-out months (12-15) stream in one
at a time.  After each month we show

* what the maintenance algorithm did (connections, unions, splits, hash
  rewrites, descriptor-vector touches — the Eq. 8 cost counters);
* that recommendations stay fresh: a drifting user's new favourite topic
  starts surfacing for the videos they now comment on.

Run:  python examples/dynamic_community.py
"""

from repro.community import build_workload
from repro.core import CommunityIndex, RecommenderConfig, csf_sar_h_recommender
from repro.evaluation import JudgePanel, evaluate_method


def main() -> None:
    workload = build_workload(hours=12.0, seed=19)
    dataset = workload.dataset
    index = CommunityIndex(
        dataset, RecommenderConfig(k=40), build_lsb=False, build_global_features=False
    )
    panel = JudgePanel(dataset)

    drifters = [u for u in dataset.users.values() if u.drift_topic is not None]
    print(
        f"community: {dataset.num_videos} videos, {dataset.num_users} users "
        f"({len(drifters)} will drift to a new topic), "
        f"{index.social.k} sub-communities\n"
    )

    def snapshot(label: str) -> None:
        recommender = csf_sar_h_recommender(index)
        result = evaluate_method(
            label, recommender.recommend, workload.sources, panel, top_ks=(10,)
        )
        row = result.row(10)
        sizes = sorted(
            (len(members) for members in index.social.communities.values()),
            reverse=True,
        )
        print(
            f"{label:>8}: AR@10={row.ar:.3f} AC@10={row.ac:.2f} "
            f"MAP@10={row.map:.3f}  largest communities: {sizes[:5]}"
        )

    snapshot("baseline")
    for month in range(12, 16):
        batch = [
            (comment.user_id, comment.video_id)
            for comment in dataset.comments_between(month, month)
        ]
        stats = index.social.apply_comments(batch)
        index.rebuild_sorted_dictionary()
        print(
            f"\nmonth {month}: {len(batch)} comments -> "
            f"{stats.connections} new connections, {stats.new_users} new users, "
            f"{stats.unions} unions, {stats.splits} splits, "
            f"{stats.index_updates} hash rewrites, "
            f"{stats.descriptor_updates} vector touches "
            f"({stats.seconds * 1000:.0f} ms)"
        )
        snapshot(f"+{month - 11}m")

    print(
        "\nEffectiveness holds while the sub-communities reorganise — the "
        "paper's Figure 11 story, with Figure 12(c)'s cost counters shown "
        "per month."
    )


if __name__ == "__main__":
    main()
