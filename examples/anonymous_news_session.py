#!/usr/bin/env python3
"""Scenario: anonymous-user browsing session in a news-style community.

The paper's motivating case: 19% of users browse in private mode, new
users have no history — so recommendations must come from the *clicked
video alone*, not a profile.  This example simulates such a session:

* an anonymous visitor clicks through a sequence of videos;
* after every click the system recommends from that single video via
  content-social fusion;
* we track how often the session's next click (drawn from the same topic
  — the visitor is following a story) was already on the recommendation
  list, and compare CSF against the content-only CR and the multimodal
  AFFRF — the systems a profile-less site could otherwise deploy.

Run:  python examples/anonymous_news_session.py
"""

import numpy as np

from repro.community import build_workload
from repro.core import (
    AffrfRecommender,
    CommunityIndex,
    RecommenderConfig,
    content_recommender,
    csf_sar_h_recommender,
)


def simulate_session(dataset, start_video: str, length: int, rng) -> list[str]:
    """An anonymous visitor follows one topic for *length* clicks."""
    topic = dataset.records[start_video].topic
    pool = [v for v in dataset.videos_of_topic(topic) if v != start_video]
    clicks = [start_video]
    for _ in range(length - 1):
        if not pool:
            break
        pick = str(rng.choice(pool))
        pool.remove(pick)
        clicks.append(pick)
    return clicks


def hit_rate(recommend, clicks, top_k: int = 10) -> float:
    """Share of next-clicks already present in the previous recommendation."""
    hits = 0
    for current, nxt in zip(clicks[:-1], clicks[1:]):
        if nxt in recommend(current, top_k):
            hits += 1
    return hits / max(len(clicks) - 1, 1)


def main() -> None:
    rng = np.random.default_rng(7)
    workload = build_workload(hours=10.0, seed=7)
    dataset = workload.dataset
    index = CommunityIndex(dataset, RecommenderConfig(k=40))

    systems = {
        "CSF-SAR-H": csf_sar_h_recommender(index).recommend,
        "CR (content only)": content_recommender(index).recommend,
        "AFFRF (multimodal)": AffrfRecommender(index).recommend,
    }

    print("anonymous sessions: 5 visitors x 6 clicks each, top-10 lists\n")
    rates = {name: [] for name in systems}
    for session_id, start in enumerate(workload.sources[:5]):
        clicks = simulate_session(dataset, start, length=6, rng=rng)
        print(f"session {session_id}: {' -> '.join(clicks)}")
        for name, recommend in systems.items():
            rates[name].append(hit_rate(recommend, clicks))

    print("\nnext-click hit rate (higher = fewer dead-end recommendations):")
    for name, values in sorted(rates.items(), key=lambda kv: -np.mean(kv[1])):
        print(f"  {name:<20} {np.mean(values):.2f}")


if __name__ == "__main__":
    main()
