#!/usr/bin/env python3
"""Scenario: screening live uploads against a reference catalogue.

A sharing community ingests user uploads continuously and wants to flag
re-uploads of known content *while the frames stream in*, without
buffering whole files.  This example drives the streaming extension
(`repro.streaming`) built on the same cuboid-signature + LSB machinery as
the recommender:

1. index a catalogue of reference clips;
2. stream three uploads through the monitor — an exact re-upload, a
   brightness-edited variant, and fresh original content;
3. print the alerts and the per-reference evidence trail.

Run:  python examples/upload_screening.py
"""

import numpy as np

from repro.signatures import extract_signature_series
from repro.streaming import ReferenceCatalogue, StreamMonitor
from repro.video import derive_variant, synthesize_clip
from repro.video.transforms import adjust_brightness


def screen(catalogue: ReferenceCatalogue, label: str, clip) -> None:
    monitor = StreamMonitor(catalogue)
    alerts = []
    for frame in clip.frames:
        alerts.extend(monitor.push(frame))
    alerts.extend(monitor.finish())
    verdict = (
        f"FLAGGED as {alerts[0].reference_id!r} at frame "
        f"{alerts[0].frame_position} "
        f"({alerts[0].matched_segments} matched segments, "
        f"evidence {alerts[0].score:.2f})"
        if alerts
        else "clean"
    )
    evidence = {ref: round(value, 2) for ref, value in monitor.evidence().items()}
    print(f"{label:<24} -> {verdict}")
    print(f"{'':<24}    evidence trail: {evidence or '{}'}")


def main() -> None:
    rng = np.random.default_rng(2024)
    catalogue = ReferenceCatalogue()
    references = {}
    for name, topic in (("music_video", 0), ("match_highlights", 4), ("trailer", 6)):
        clip = synthesize_clip(
            name, topic=topic, rng=rng, num_shots=4, frames_per_shot=(10, 14)
        )
        references[name] = clip
        catalogue.add(extract_signature_series(clip))
    print(f"catalogue: {len(catalogue)} reference clips indexed\n")

    # 1. Exact re-upload of a protected clip.
    screen(catalogue, "re-upload (exact)", references["music_video"])

    # 2. Brightness-shifted re-encode (cuboid values are invariant).
    variant = derive_variant(
        references["match_highlights"], "sneaky", rng, chain=[adjust_brightness]
    )
    screen(catalogue, "re-upload (brightened)", variant)

    # 3. Genuinely new content of the same genre.
    fresh = synthesize_clip(
        "fresh", topic=0, rng=rng, num_shots=4, frames_per_shot=(10, 14)
    )
    screen(catalogue, "original upload", fresh)


if __name__ == "__main__":
    main()
