"""Tests for the dynamic social index and update maintenance (Fig. 5).

The property test at the bottom is the load-bearing one: after arbitrary
randomised comment batches, every coupled structure (graph, communities,
chained hash, SAR vectors, inverted file) must remain mutually consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.social.descriptor import SocialDescriptor
from repro.social.updates import Connection, DynamicSocialIndex, MaintenanceStats


def group_descriptors():
    """Three tight user groups across nine videos."""
    groups = {
        0: ["a1", "a2", "a3"],
        1: ["b1", "b2", "b3"],
        2: ["c1", "c2", "c3"],
    }
    descriptors = []
    for video in range(9):
        users = groups[video % 3]
        descriptors.append(SocialDescriptor.from_users(f"v{video}", users))
    return descriptors


@pytest.fixture()
def index():
    return DynamicSocialIndex.build(group_descriptors(), k=3)


def assert_consistent(index: DynamicSocialIndex) -> None:
    """All coupled structures agree with each other."""
    # Communities partition exactly the users known to the hash table.
    seen: set[str] = set()
    for cno, members in index.communities.items():
        for user in members:
            assert user not in seen, f"user {user} in two communities"
            seen.add(user)
            assert index.hash_table.lookup(user) == cno
    assert seen == {key for key, _ in index.hash_table.items()}
    # Vectors match a fresh vectorization of their descriptors.
    for video_id, descriptor in index.descriptors.items():
        expected = index.vectorize_users(descriptor.users)
        assert np.allclose(index.vectors[video_id], expected), video_id
        assert video_id in index.inverted


class TestBuild:
    def test_finds_three_groups(self, index):
        assert index.k == 3
        assert sorted(len(m) for m in index.communities.values()) == [3, 3, 3]
        assert index.community_of("a1") == index.community_of("a2")
        assert index.community_of("a1") != index.community_of("b1")

    def test_initial_consistency(self, index):
        assert_consistent(index)

    def test_vectors_concentrated(self, index):
        vector = index.vectors["v0"]
        assert vector.max() == 3.0
        assert vector.sum() == 3.0


class TestConnections:
    def test_connection_validation(self, index):
        with pytest.raises(ValueError, match="self-connections"):
            index.maintain([Connection("a1", "a1")])
        with pytest.raises(ValueError, match="delta"):
            index.maintain([Connection("a1", "b1", delta=0)])

    def test_light_connection_changes_nothing(self, index):
        before = {c: set(m) for c, m in index.communities.items()}
        index.maintain([Connection("a1", "b1", delta=1)])
        assert {c: set(m) for c, m in index.communities.items()} == before
        assert_consistent(index)

    def test_heavy_connection_triggers_union_and_resplit(self, index):
        stats = index.maintain([Connection("a1", "b1", delta=50)])
        assert stats.unions >= 1
        assert len(index.communities) == 3  # k restored by a split
        assert index.community_of("a1") == index.community_of("b1")
        assert_consistent(index)

    def test_new_user_assigned_to_neighbour_community(self, index):
        stats = index.apply_comments([("newbie", "v0")])
        assert stats.new_users == 1
        assert index.community_of("newbie") == index.community_of("a1")
        assert_consistent(index)

    def test_new_video_gets_descriptor_and_vector(self, index):
        index.apply_comments([("a1", "v_new"), ("a2", "v_new")])
        assert "v_new" in index.descriptors
        assert index.vectors["v_new"].sum() == 2.0
        assert_consistent(index)

    def test_duplicate_comment_ignored(self, index):
        before = len(index.descriptors["v0"].users)
        index.apply_comments([("a1", "v0")])
        assert len(index.descriptors["v0"].users) == before
        assert_consistent(index)


class TestStats:
    def test_merge_accumulates(self):
        first = MaintenanceStats(connections=1, hash_ops=2, seconds=0.5)
        second = MaintenanceStats(connections=2, unions=1, seconds=0.25)
        first.merge(second)
        assert first.connections == 3
        assert first.unions == 1
        assert first.seconds == pytest.approx(0.75)

    def test_costs_scale_with_batch(self, index):
        small = index.maintain([Connection("a1", "b1")])
        large_batch = [
            Connection(u, v)
            for u in ("a1", "a2", "a3")
            for v in ("b1", "b2", "c1")
        ]
        large = index.maintain(large_batch)
        assert large.connections > small.connections
        assert large.hash_ops > small.hash_ops


class TestRandomisedConsistency:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a1", "a2", "b1", "b2", "c1", "n1", "n2"]),
                st.sampled_from([f"v{i}" for i in range(9)] + ["vx", "vy"]),
            ),
            max_size=25,
        )
    )
    def test_invariants_hold_after_arbitrary_batches(self, comments):
        index = DynamicSocialIndex.build(group_descriptors(), k=3)
        # Feed the batch in two chunks to exercise repeated maintenance.
        half = len(comments) // 2
        index.apply_comments(comments[:half])
        index.apply_comments(comments[half:])
        assert_consistent(index)
        assert len(index.communities) <= 3 + 1  # transiently bounded by k


class TestCappedMaintenance:
    """Eq.-8 maintenance under ``uig_pair_cap``: bounded fan-out, nobody
    isolated — the incremental mirror of the capped build fix."""

    def _dense_index(self, cap):
        users = [f"u{i:02d}" for i in range(10)]
        descriptors = [SocialDescriptor.from_users("v_dense", users)]
        return DynamicSocialIndex.build(descriptors, k=2, uig_pair_cap=cap)

    def test_build_cap_is_recorded_and_reused(self):
        index = self._dense_index(3)
        assert index.uig_pair_cap == 3

    def test_commenter_never_isolated_under_cap(self):
        index = self._dense_index(3)
        index.apply_comments([("zz_late", "v_dense")])
        # The new commenter sorts after every capped user; pre-fix it got
        # a node (via the descriptor) but zero graph edges.
        assert index.graph.degree("zz_late") >= 1
        assert_consistent(index)

    def test_fan_out_bounded_by_cap(self):
        index = self._dense_index(4)
        before = index.graph.number_of_edges()
        index.apply_comments([("zz_late", "v_dense")])
        # At most cap-1 new edges for one comment on a dense video.
        assert index.graph.number_of_edges() - before <= 3

    def test_uncapped_fan_out_links_everyone(self):
        users = [f"u{i}" for i in range(5)]
        index = DynamicSocialIndex.build(
            [SocialDescriptor.from_users("v", users)], k=2
        )
        index.apply_comments([("newbie", "v")])
        assert index.graph.degree("newbie") == 5
        assert_consistent(index)
