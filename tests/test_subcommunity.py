"""Tests for sub-community extraction (literal and fast paths)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.social.subcommunity import (
    Partition,
    extract_subcommunities,
    extract_subcommunities_literal,
    lightest_internal_edge,
)


def weighted_graph(edges):
    graph = nx.Graph()
    for source, target, weight in edges:
        graph.add_edge(source, target, weight=weight)
    return graph


class TestPartition:
    def test_membership_and_sizes(self):
        partition = Partition([{"b", "c"}, {"a"}])
        assert partition.k == 2
        assert partition.community_of("a") != partition.community_of("b")
        assert partition.community_of("b") == partition.community_of("c")
        assert sorted(partition.sizes()) == [1, 2]

    def test_deterministic_ids(self):
        first = Partition([{"b"}, {"a"}])
        second = Partition([{"a"}, {"b"}])
        assert first.membership == second.membership

    def test_unknown_user(self):
        assert Partition([{"a"}]).community_of("zz") is None

    def test_overlapping_communities_rejected(self):
        with pytest.raises(ValueError, match="two communities"):
            Partition([{"a"}, {"a", "b"}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Partition([])


class TestLiteralExtraction:
    def test_cuts_lightest_bridge(self):
        # Two triangles joined by a weight-1 bridge.
        graph = weighted_graph([
            ("a", "b", 5), ("b", "c", 5), ("a", "c", 5),
            ("x", "y", 5), ("y", "z", 5), ("x", "z", 5),
            ("c", "x", 1),
        ])
        partition = extract_subcommunities_literal(graph, 2)
        assert partition.k == 2
        assert partition.community_of("a") == partition.community_of("c")
        assert partition.community_of("x") == partition.community_of("z")
        assert partition.community_of("a") != partition.community_of("x")

    def test_pre_disconnected_components_count(self):
        graph = weighted_graph([("a", "b", 1), ("c", "d", 1)])
        partition = extract_subcommunities_literal(graph, 2)
        assert partition.k == 2

    def test_more_components_than_k_returned_as_is(self):
        graph = weighted_graph([("a", "b", 1), ("c", "d", 1), ("e", "f", 1)])
        partition = extract_subcommunities_literal(graph, 2)
        assert partition.k == 3  # step 1 keeps natural components

    def test_k_larger_than_nodes_saturates(self):
        graph = weighted_graph([("a", "b", 1)])
        partition = extract_subcommunities_literal(graph, 10)
        assert partition.k == 2

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty graph"):
            extract_subcommunities_literal(nx.Graph(), 2)

    def test_invalid_k(self):
        graph = weighted_graph([("a", "b", 1)])
        with pytest.raises(ValueError, match="k must be"):
            extract_subcommunities_literal(graph, 0)


class TestFastExtraction:
    def test_matches_literal_on_example(self):
        graph = weighted_graph([
            ("a", "b", 9), ("b", "c", 8), ("c", "d", 2), ("d", "e", 7), ("e", "f", 6),
        ])
        for k in (1, 2, 3):
            literal = extract_subcommunities_literal(graph, k)
            fast = extract_subcommunities(graph, k)
            assert literal.membership == fast.membership

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=6))
    def test_fast_equals_literal_on_random_graphs(self, seed, k):
        """Single-linkage equivalence holds whenever weights are distinct."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 14))
        graph = nx.gnp_random_graph(n, 0.4, seed=seed)
        graph.add_nodes_from(range(n))
        weights = rng.permutation(graph.number_of_edges() * 2 + 1)
        for index, (source, target) in enumerate(graph.edges()):
            graph[source][target]["weight"] = int(weights[index]) + 1
        relabelled = nx.relabel_nodes(graph, {node: f"u{node}" for node in graph})
        literal = extract_subcommunities_literal(relabelled, k)
        fast = extract_subcommunities(relabelled, k)
        assert literal.membership == fast.membership


class TestLightestInternalEdge:
    def test_finds_minimum(self):
        graph = weighted_graph([("a", "b", 3), ("b", "c", 1), ("a", "c", 2)])
        edge = lightest_internal_edge(graph, {"a", "b", "c"})
        assert edge[2] == 1

    def test_ignores_external_edges(self):
        graph = weighted_graph([("a", "b", 5), ("b", "x", 1)])
        edge = lightest_internal_edge(graph, {"a", "b"})
        assert edge[2] == 5

    def test_none_when_no_internal_edges(self):
        graph = weighted_graph([("a", "x", 1)])
        assert lightest_internal_edge(graph, {"a", "b"}) is None
