"""Tests for the analysis/observability helpers."""

import csv
import io
import json

import pytest

from repro.analysis import (
    community_stats,
    descriptor_stats,
    partition_stats,
    reports_to_csv,
    reports_to_json,
    reports_to_rows,
    write_csv,
)
from repro.evaluation.harness import EffectivenessReport, MetricsRow
from repro.social.subcommunity import Partition, extract_subcommunities
from repro.social.uig import build_uig


class TestCommunityStats:
    def test_counts_add_up(self, workload):
        stats = community_stats(workload.dataset)
        assert stats.num_videos == workload.dataset.num_videos
        assert stats.num_masters + stats.num_variants == stats.num_videos
        assert stats.num_comments == len(workload.dataset.comments)
        assert sum(stats.videos_per_topic.values()) == stats.num_videos

    def test_comment_bounds(self, workload):
        stats = community_stats(workload.dataset)
        assert 0 < stats.comments_per_video_mean <= stats.comments_per_video_max

    def test_month_cutoff_reduces_counts(self, workload):
        early = community_stats(workload.dataset, up_to_month=2)
        late = community_stats(workload.dataset, up_to_month=15)
        assert early.num_comments < late.num_comments


class TestDescriptorStats:
    def test_statistics_ordering(self, workload):
        stats = descriptor_stats(workload.dataset.descriptors(11))
        assert stats.count == workload.dataset.num_videos
        assert stats.median <= stats.p90 <= stats.max
        assert stats.mean > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            descriptor_stats({})


class TestPartitionStats:
    def test_clean_partition_scores_high(self, workload):
        descriptors = workload.dataset.descriptors(11)
        graph = build_uig(descriptors.values())
        partition = extract_subcommunities(graph, 12)
        stats = partition_stats(graph, partition)
        assert stats.k == partition.k
        assert 0.0 <= stats.largest_share <= 1.0
        assert 0.0 <= stats.internal_edge_fraction <= 1.0
        assert stats.size_max >= stats.size_mean

    def test_shattered_partition_has_low_internal_fraction(self, workload):
        descriptors = workload.dataset.descriptors(11)
        graph = build_uig(descriptors.values())
        shattered = Partition([{node} for node in graph.nodes()])
        stats = partition_stats(graph, shattered)
        assert stats.internal_edge_fraction == 0.0
        assert stats.singletons == stats.k


def make_report(method="m", seconds=1.5):
    return EffectivenessReport(
        method=method,
        rows=(
            MetricsRow(method=method, top_k=5, ar=4.0, ac=0.8, map=0.9),
            MetricsRow(method=method, top_k=10, ar=3.5, ac=0.7, map=0.8),
        ),
        seconds=seconds,
    )


class TestExport:
    def test_rows_flatten_all_cutoffs(self):
        rows = reports_to_rows([make_report("a"), make_report("b")])
        assert len(rows) == 4
        assert {row["method"] for row in rows} == {"a", "b"}

    def test_csv_parses_back(self):
        text = reports_to_csv([make_report()])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert float(parsed[0]["ar"]) == 4.0

    def test_csv_requires_reports(self):
        with pytest.raises(ValueError, match="at least one"):
            reports_to_csv([])

    def test_json_roundtrip(self):
        payload = json.loads(reports_to_json([make_report()]))
        assert payload[0]["top_k"] == 5
        assert payload[1]["map"] == 0.8

    def test_write_csv(self, tmp_path):
        path = tmp_path / "results.csv"
        write_csv([make_report()], path)
        assert path.read_text().startswith("method,")
