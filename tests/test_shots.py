"""Unit tests for shot-boundary detection and segmentation."""

import numpy as np
import pytest

from repro.video.clip import VideoClip
from repro.video.shots import Segment, detect_cuts, difference_profile, segment_clip
from repro.video.synthesis import synthesize_clip


def constant_clip(levels, frames_per_level=6, size=8):
    """A clip of constant-intensity blocks: cuts exactly between levels."""
    frames = np.concatenate(
        [np.full((frames_per_level, size, size), level, dtype=np.float32) for level in levels]
    )
    return VideoClip(video_id="c", frames=frames)


class TestSegment:
    def test_length(self):
        assert Segment(2, 7).length == 5

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="segment bounds"):
            Segment(5, 5)
        with pytest.raises(ValueError, match="segment bounds"):
            Segment(-1, 3)

    def test_frames_of(self):
        clip = constant_clip([10.0], frames_per_level=5)
        assert Segment(1, 4).frames_of(clip).shape == (3, 8, 8)


class TestDifferenceProfile:
    def test_length_is_frames_minus_one(self):
        clip = constant_clip([10.0, 200.0])
        assert difference_profile(clip).size == clip.num_frames - 1

    def test_single_frame_clip_has_empty_profile(self):
        clip = VideoClip("c", np.zeros((1, 4, 4), dtype=np.float32))
        assert difference_profile(clip).size == 0


class TestDetectCuts:
    def test_detects_hard_cut(self):
        clip = constant_clip([10.0, 200.0], frames_per_level=6)
        assert detect_cuts(clip) == [6]

    def test_static_clip_has_no_cuts(self):
        clip = constant_clip([100.0], frames_per_level=12)
        assert detect_cuts(clip) == []

    def test_multiple_cuts(self):
        clip = constant_clip([10.0, 200.0, 60.0], frames_per_level=5)
        assert detect_cuts(clip) == [5, 10]

    def test_min_abs_difference_suppresses_small_jumps(self):
        clip = constant_clip([100.0, 103.0], frames_per_level=6)
        assert detect_cuts(clip, min_abs_difference=8.0) == []

    def test_single_frame_clip(self):
        clip = VideoClip("c", np.zeros((1, 4, 4), dtype=np.float32))
        assert detect_cuts(clip) == []


class TestSegmentClip:
    def test_segments_cover_whole_clip(self, rng):
        clip = synthesize_clip("v", 0, rng, num_shots=3)
        segments = segment_clip(clip)
        assert segments[0].start == 0
        assert segments[-1].end == clip.num_frames
        for before, after in zip(segments[:-1], segments[1:]):
            assert before.end == after.start

    def test_segments_are_nonoverlapping_and_nonempty(self, rng):
        clip = synthesize_clip("v", 1, rng, num_shots=4)
        for segment in segment_clip(clip):
            assert segment.length >= 1

    def test_recovers_synthetic_shot_count_approximately(self, rng):
        clip = synthesize_clip("v", 0, rng, num_shots=4, frames_per_shot=(8, 12))
        segments = segment_clip(clip)
        assert 2 <= len(segments) <= 6

    def test_static_clip_yields_single_segment(self):
        clip = constant_clip([120.0], frames_per_level=10)
        segments = segment_clip(clip)
        assert len(segments) == 1
        assert (segments[0].start, segments[0].end) == (0, 10)

    def test_short_segments_are_merged(self):
        # Level pattern producing a 1-frame middle segment.
        frames = np.concatenate([
            np.full((6, 8, 8), 10.0, dtype=np.float32),
            np.full((1, 8, 8), 200.0, dtype=np.float32),
            np.full((6, 8, 8), 90.0, dtype=np.float32),
        ])
        clip = VideoClip("c", frames)
        segments = segment_clip(clip, min_segment_length=2)
        assert all(s.length >= 2 for s in segments)
        assert segments[-1].end == clip.num_frames
