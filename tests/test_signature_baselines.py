"""Tests for the literature baseline signatures (ordinal, color shift, centroid)."""

import numpy as np
import pytest

from repro.signatures.baselines import (
    centroid_distance,
    centroid_signature,
    color_shift_distance,
    color_shift_signature,
    ordinal_distance,
    ordinal_signature,
)
from repro.video import synthesize_clip
from repro.video.transforms import adjust_brightness


class TestOrdinal:
    def test_is_a_permutation(self):
        frame = np.random.default_rng(0).uniform(0, 255, (16, 16))
        ranks = ordinal_signature(frame, grid=4)
        assert sorted(ranks) == list(range(16))

    def test_invariant_to_global_brightness(self):
        frame = np.random.default_rng(1).uniform(0, 200, (16, 16))
        assert np.array_equal(
            ordinal_signature(frame, 4), ordinal_signature(frame + 30.0, 4)
        )

    def test_distance_zero_for_identical(self):
        frame = np.random.default_rng(2).uniform(0, 255, (16, 16))
        ranks = ordinal_signature(frame, 4)
        assert ordinal_distance(ranks, ranks) == 0.0

    def test_distance_in_unit_interval(self):
        a = ordinal_signature(np.random.default_rng(3).uniform(0, 255, (16, 16)), 4)
        b = ordinal_signature(np.random.default_rng(4).uniform(0, 255, (16, 16)), 4)
        assert 0.0 <= ordinal_distance(a, b) <= 1.0

    def test_reversed_ranks_hit_max_distance(self):
        ranks = np.arange(16)
        assert ordinal_distance(ranks, ranks[::-1]) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share a shape"):
            ordinal_distance(np.arange(4), np.arange(9))


class TestColorShift:
    def test_length(self, rng):
        clip = synthesize_clip("v", 0, rng)
        assert color_shift_signature(clip, samples=10).size == 9

    def test_brightness_invariance(self, rng):
        clip = synthesize_clip("v", 0, rng)
        bright = adjust_brightness(clip, np.random.default_rng(7))
        a = color_shift_signature(clip, samples=8)
        b = color_shift_signature(bright, samples=8)
        # Differences of means cancel the constant offset exactly.
        assert color_shift_distance(a, b) == pytest.approx(0.0, abs=1e-3)

    def test_too_few_samples_rejected(self, rng):
        clip = synthesize_clip("v", 0, rng)
        with pytest.raises(ValueError, match="two samples"):
            color_shift_signature(clip, samples=1)

    def test_distance_of_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            color_shift_distance(np.array([]), np.array([]))


class TestCentroid:
    def test_shape(self, rng):
        clip = synthesize_clip("v", 0, rng)
        track = centroid_signature(clip, grid=4, samples=6)
        assert track.shape == (6, 4)

    def test_coordinates_within_grid(self, rng):
        clip = synthesize_clip("v", 1, rng)
        track = centroid_signature(clip, grid=4, samples=6)
        assert track.min() >= 0
        assert track.max() <= 3

    def test_self_distance_zero(self, rng):
        clip = synthesize_clip("v", 2, rng)
        track = centroid_signature(clip)
        assert centroid_distance(track, track) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            centroid_distance(np.empty((0, 4)), np.empty((0, 4)))
