"""Shared fixtures: one small community + built index reused session-wide.

Building a CommunityIndex materialises every clip and extracts signatures,
so the expensive fixtures are session-scoped; tests must treat them as
read-only (tests that mutate social state build their own index).

The suite also carries a repo-wide per-test watchdog: the concurrency
suites (gateway, chaos soak, obs stress) would hang forever on a real
deadlock, and a hung CI job is a far worse failure report than a stack
dump.  When ``pytest-timeout`` is installed (CI installs ``.[dev]``) it
is used as-is; otherwise a ``faulthandler`` watchdog dumps every thread's
stack and kills the process after ``REPRO_TEST_TIMEOUT`` seconds (0
disables it).  The fallback keeps the bar enforceable in environments
where only the core dependencies exist.
"""

from __future__ import annotations

import faulthandler
import importlib.util
import os

import numpy as np
import pytest

from repro.community import build_workload
from repro.core import CommunityIndex, RecommenderConfig

TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))
_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None

#: The fallback watchdog kills the process with ``os._exit`` — pytest's
#: fd-level capture would discard anything written to stderr at that
#: moment, so the dump goes to a file that survives the kill (CI uploads
#: it; a clean run removes it on session teardown).
WATCHDOG_LOG = os.environ.get("REPRO_TEST_TIMEOUT_LOG", ".test-watchdog.log")
_watchdog_log = None


def pytest_configure(config):
    if TEST_TIMEOUT > 0 and _HAVE_PYTEST_TIMEOUT:
        # Repo-wide default only: an explicit --timeout still wins.
        if not getattr(config.option, "timeout", None):
            config.option.timeout = TEST_TIMEOUT


def pytest_unconfigure(config):
    global _watchdog_log
    if _watchdog_log is not None:
        # Reaching teardown means no test hung; drop the empty log.
        _watchdog_log.close()
        _watchdog_log = None
        try:
            os.remove(WATCHDOG_LOG)
        except OSError:
            pass


def _arm_watchdog(item):
    global _watchdog_log
    if _watchdog_log is None:
        _watchdog_log = open(WATCHDOG_LOG, "w", encoding="utf-8")
    _watchdog_log.seek(0)
    _watchdog_log.truncate()
    _watchdog_log.write(
        f"watchdog: {item.nodeid} exceeded {TEST_TIMEOUT:.0f}s "
        f"(REPRO_TEST_TIMEOUT); dumping all thread stacks and exiting\n"
    )
    _watchdog_log.flush()
    faulthandler.dump_traceback_later(TEST_TIMEOUT, exit=True, file=_watchdog_log)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if TEST_TIMEOUT > 0 and not _HAVE_PYTEST_TIMEOUT:
        # Re-armed per test: a deadlocked test dies with a full stack
        # dump of every thread instead of hanging the whole run.
        _arm_watchdog(item)
        try:
            return (yield)
        finally:
            faulthandler.cancel_dump_traceback_later()
    return (yield)


@pytest.fixture(scope="session")
def workload():
    """A small (4-hour, 48-video) community with its 10 source videos."""
    return build_workload(hours=4.0, seed=11)


@pytest.fixture(scope="session")
def config():
    """Recommender config scaled to the small test community."""
    return RecommenderConfig(k=12)


@pytest.fixture(scope="session")
def index(workload, config):
    """A fully built CommunityIndex (LSB + global features included)."""
    return CommunityIndex(workload.dataset, config)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
