"""Shared fixtures: one small community + built index reused session-wide.

Building a CommunityIndex materialises every clip and extracts signatures,
so the expensive fixtures are session-scoped; tests must treat them as
read-only (tests that mutate social state build their own index).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.community import build_workload
from repro.core import CommunityIndex, RecommenderConfig


@pytest.fixture(scope="session")
def workload():
    """A small (4-hour, 48-video) community with its 10 source videos."""
    return build_workload(hours=4.0, seed=11)


@pytest.fixture(scope="session")
def config():
    """Recommender config scaled to the small test community."""
    return RecommenderConfig(k=12)


@pytest.fixture(scope="session")
def index(workload, config):
    """A fully built CommunityIndex (LSB + global features included)."""
    return CommunityIndex(workload.dataset, config)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
