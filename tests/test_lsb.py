"""Tests for the LSB content index."""

import numpy as np
import pytest

from repro.emd import EmdEmbedding
from repro.index.lsb import LsbIndex
from repro.signatures.cuboid import CuboidSignature


def sig(center, rng, n=4):
    return CuboidSignature(
        values=rng.normal(center, 1.5, size=n),
        weights=rng.uniform(0.2, 1.0, size=n),
    )


@pytest.fixture()
def embedding():
    return EmdEmbedding(lo=-50.0, hi=50.0, resolution=32)


class TestConstruction:
    def test_parameter_validation(self, embedding):
        with pytest.raises(ValueError, match="projection"):
            LsbIndex(embedding, num_projections=0)
        with pytest.raises(ValueError, match="bits"):
            LsbIndex(embedding, bits_per_dim=0)
        with pytest.raises(ValueError, match="width"):
            LsbIndex(embedding, bucket_width=0)
        with pytest.raises(ValueError, match="tree"):
            LsbIndex(embedding, num_trees=0)

    def test_total_bits(self, embedding):
        index = LsbIndex(embedding, num_projections=3, bits_per_dim=6)
        assert index.total_bits == 18

    def test_len_counts_inserts(self, embedding, rng):
        index = LsbIndex(embedding)
        for i in range(5):
            index.insert(f"v{i}", 0, sig(0.0, rng))
        assert len(index) == 5


class TestProbe:
    def test_returns_at_most_budget(self, embedding, rng):
        index = LsbIndex(embedding, num_trees=2)
        for i in range(30):
            index.insert(f"v{i}", 0, sig(0.0, rng))
        assert len(index.probe(sig(0.0, rng), budget=8)) <= 8

    def test_budget_validation(self, embedding, rng):
        index = LsbIndex(embedding)
        with pytest.raises(ValueError, match="budget"):
            index.probe(sig(0.0, rng), budget=0)

    def test_prefers_nearby_cluster(self, embedding):
        rng = np.random.default_rng(5)
        index = LsbIndex(embedding, num_projections=3, bits_per_dim=6, num_trees=2)
        for i in range(40):
            center = -25.0 if i < 20 else 25.0
            index.insert(f"v{i}", 0, sig(center, rng))
        candidates = index.candidate_videos(sig(-25.0, rng), budget=12)
        near = sum(1 for vid in candidates if int(vid[1:]) < 20)
        assert near >= len(candidates) * 0.7

    def test_results_sorted_by_prefix_length(self, embedding):
        rng = np.random.default_rng(6)
        index = LsbIndex(embedding)
        for i in range(20):
            index.insert(f"v{i}", 0, sig(rng.uniform(-40, 40), rng))
        scored = index.probe(sig(0.0, rng), budget=10)
        prefixes = [lcp for lcp, _ in scored]
        assert prefixes == sorted(prefixes, reverse=True)

    def test_candidate_videos_deduplicates(self, embedding):
        rng = np.random.default_rng(7)
        index = LsbIndex(embedding)
        for position in range(6):
            index.insert("same", position, sig(0.0, rng))
        candidates = index.candidate_videos(sig(0.0, rng), budget=12)
        assert candidates == ["same"]

    def test_probe_skips_tombstoned_entries(self, embedding):
        rng = np.random.default_rng(9)
        index = LsbIndex(embedding)
        for i in range(20):
            index.insert(f"v{i}", 0, sig(0.0, rng))
        index.remove("v3")
        index.remove("v7")
        for _, entry in index.probe(sig(0.0, rng), budget=40):
            assert entry.video_id not in ("v3", "v7")

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(8)
        signatures = [sig(rng.uniform(-30, 30), rng) for _ in range(15)]
        query = sig(0.0, rng)
        results = []
        for _ in range(2):
            embedding = EmdEmbedding(lo=-50.0, hi=50.0, resolution=32)
            index = LsbIndex(embedding, seed=3)
            for i, signature in enumerate(signatures):
                index.insert(f"v{i}", 0, signature)
            results.append(index.candidate_videos(query, budget=8))
        assert results[0] == results[1]


class TestRemove:
    def fill(self, index, rng, count=12, positions=3):
        for i in range(count):
            for position in range(positions):
                index.insert(f"v{i}", position, sig(0.0, rng))

    def test_remove_tombstones_and_shrinks_len(self, embedding, rng):
        index = LsbIndex(embedding)
        self.fill(index, rng)
        assert "v4" in index
        removed = index.remove("v4")
        assert removed == 3
        assert "v4" not in index
        assert len(index) == 11 * 3

    def test_remove_unknown_is_noop(self, embedding, rng):
        index = LsbIndex(embedding)
        self.fill(index, rng, count=3)
        assert index.remove("nope") == 0
        assert len(index) == 9

    def test_candidates_exclude_removed_video(self, embedding, rng):
        index = LsbIndex(embedding)
        self.fill(index, rng)
        index.remove("v2")
        candidates = index.candidate_videos(sig(0.0, rng), budget=60)
        assert "v2" not in candidates

    def test_compact_purges_dead_entries(self, embedding, rng):
        index = LsbIndex(embedding)
        index.compact_threshold = 10.0  # keep auto-compaction out of the way
        self.fill(index, rng)
        index.remove("v0")
        assert index.dead_entries == 3
        query = sig(0.0, rng)
        before = index.candidate_videos(query, budget=60)
        index.compact()
        assert index.dead_entries == 0
        assert index.candidate_videos(query, budget=60) == before

    def test_auto_compaction_when_mostly_dead(self, embedding, rng):
        index = LsbIndex(embedding)
        self.fill(index, rng, count=4)
        for i in range(3):
            index.remove(f"v{i}")
        # 9 tombstones against 3 live entries is far past the threshold.
        assert index.dead_entries == 0

    def test_reinsert_after_remove_resurrects_cleanly(self, embedding, rng):
        index = LsbIndex(embedding)
        index.compact_threshold = 10.0
        self.fill(index, rng, count=5)
        index.remove("v1")
        index.insert("v1", 0, sig(0.0, rng))
        assert "v1" in index
        assert index.dead_entries == 0
        entries = [
            entry
            for _, entry in index.probe(sig(0.0, rng), budget=60)
            if entry.video_id == "v1"
        ]
        # Only the fresh entry is visible, not the three tombstoned ones.
        assert len(entries) == 1
