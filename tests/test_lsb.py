"""Tests for the LSB content index."""

import numpy as np
import pytest

from repro.emd import EmdEmbedding
from repro.index.lsb import LsbIndex
from repro.signatures.cuboid import CuboidSignature


def sig(center, rng, n=4):
    return CuboidSignature(
        values=rng.normal(center, 1.5, size=n),
        weights=rng.uniform(0.2, 1.0, size=n),
    )


@pytest.fixture()
def embedding():
    return EmdEmbedding(lo=-50.0, hi=50.0, resolution=32)


class TestConstruction:
    def test_parameter_validation(self, embedding):
        with pytest.raises(ValueError, match="projection"):
            LsbIndex(embedding, num_projections=0)
        with pytest.raises(ValueError, match="bits"):
            LsbIndex(embedding, bits_per_dim=0)
        with pytest.raises(ValueError, match="width"):
            LsbIndex(embedding, bucket_width=0)
        with pytest.raises(ValueError, match="tree"):
            LsbIndex(embedding, num_trees=0)

    def test_total_bits(self, embedding):
        index = LsbIndex(embedding, num_projections=3, bits_per_dim=6)
        assert index.total_bits == 18

    def test_len_counts_inserts(self, embedding, rng):
        index = LsbIndex(embedding)
        for i in range(5):
            index.insert(f"v{i}", 0, sig(0.0, rng))
        assert len(index) == 5


class TestProbe:
    def test_returns_at_most_budget(self, embedding, rng):
        index = LsbIndex(embedding, num_trees=2)
        for i in range(30):
            index.insert(f"v{i}", 0, sig(0.0, rng))
        assert len(index.probe(sig(0.0, rng), budget=8)) <= 8

    def test_budget_validation(self, embedding, rng):
        index = LsbIndex(embedding)
        with pytest.raises(ValueError, match="budget"):
            index.probe(sig(0.0, rng), budget=0)

    def test_prefers_nearby_cluster(self, embedding):
        rng = np.random.default_rng(5)
        index = LsbIndex(embedding, num_projections=3, bits_per_dim=6, num_trees=2)
        for i in range(40):
            center = -25.0 if i < 20 else 25.0
            index.insert(f"v{i}", 0, sig(center, rng))
        candidates = index.candidate_videos(sig(-25.0, rng), budget=12)
        near = sum(1 for vid in candidates if int(vid[1:]) < 20)
        assert near >= len(candidates) * 0.7

    def test_results_sorted_by_prefix_length(self, embedding):
        rng = np.random.default_rng(6)
        index = LsbIndex(embedding)
        for i in range(20):
            index.insert(f"v{i}", 0, sig(rng.uniform(-40, 40), rng))
        scored = index.probe(sig(0.0, rng), budget=10)
        prefixes = [lcp for lcp, _ in scored]
        assert prefixes == sorted(prefixes, reverse=True)

    def test_candidate_videos_deduplicates(self, embedding):
        rng = np.random.default_rng(7)
        index = LsbIndex(embedding)
        for position in range(6):
            index.insert("same", position, sig(0.0, rng))
        candidates = index.candidate_videos(sig(0.0, rng), budget=12)
        assert candidates == ["same"]

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(8)
        signatures = [sig(rng.uniform(-30, 30), rng) for _ in range(15)]
        query = sig(0.0, rng)
        results = []
        for _ in range(2):
            embedding = EmdEmbedding(lo=-50.0, hi=50.0, resolution=32)
            index = LsbIndex(embedding, seed=3)
            for i, signature in enumerate(signatures):
                index.insert(f"v{i}", 0, signature)
            results.append(index.candidate_videos(query, budget=8))
        assert results[0] == results[1]
