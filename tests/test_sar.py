"""Tests for SAR: dictionaries, vectorization and the s̃J approximation."""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.social.descriptor import SocialDescriptor, jaccard
from repro.social.sar import (
    SarVectorizer,
    SortedUserDictionary,
    approx_jaccard,
    hash_dictionary_from_partition,
)
from repro.social.subcommunity import Partition


@pytest.fixture()
def partition():
    return Partition([
        {"a1", "a2", "a3"},
        {"b1", "b2"},
        {"c1"},
    ])


class TestSortedUserDictionary:
    def test_lookup(self, partition):
        dictionary = SortedUserDictionary(partition.membership)
        for user, cno in partition.membership.items():
            assert dictionary.lookup(user) == cno

    def test_missing_user(self, partition):
        dictionary = SortedUserDictionary(partition.membership)
        assert dictionary.lookup("zzz") is None
        assert dictionary.lookup("") is None

    def test_len(self, partition):
        assert len(SortedUserDictionary(partition.membership)) == 6

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(alphabet="abcxyz", min_size=1, max_size=5),
            st.integers(min_value=0, max_value=9),
            max_size=20,
        ),
        st.text(alphabet="abcxyz", min_size=1, max_size=5),
    )
    def test_manual_binary_search_matches_bisect(self, membership, probe):
        """The hand-rolled search must agree with bisect semantics."""
        dictionary = SortedUserDictionary(membership)
        expected = membership.get(probe)
        assert dictionary.lookup(probe) == expected
        names = sorted(membership)
        index = bisect.bisect_left(names, probe)
        found = index < len(names) and names[index] == probe
        assert (dictionary.lookup(probe) is not None) == found


class TestHashDictionary:
    def test_agrees_with_sorted_dictionary(self, partition):
        sorted_dict = SortedUserDictionary(partition.membership)
        hashed = hash_dictionary_from_partition(partition)
        for user in partition.membership:
            assert hashed.lookup(user) == sorted_dict.lookup(user)

    def test_bucket_count_scales_with_users(self, partition):
        hashed = hash_dictionary_from_partition(partition)
        assert hashed.num_buckets >= len(partition.membership)


class TestVectorizer:
    def test_counts_users_per_community(self, partition):
        vectorizer = SarVectorizer(SortedUserDictionary(partition.membership), partition.k)
        descriptor = SocialDescriptor.from_users("v", ["a1", "a2", "b1", "c1"])
        vector = vectorizer.vectorize(descriptor)
        assert vector.tolist() == [2.0, 1.0, 1.0]

    def test_unknown_users_skipped(self, partition):
        vectorizer = SarVectorizer(SortedUserDictionary(partition.membership), partition.k)
        vector = vectorizer.vectorize(SocialDescriptor.from_users("v", ["nobody"]))
        assert vector.sum() == 0.0

    def test_backends_vectorize_identically(self, partition):
        sorted_vec = SarVectorizer(SortedUserDictionary(partition.membership), partition.k)
        hashed_vec = SarVectorizer(hash_dictionary_from_partition(partition), partition.k)
        descriptor = SocialDescriptor.from_users("v", ["a1", "b2", "c1", "ghost"])
        assert np.array_equal(sorted_vec.vectorize(descriptor), hashed_vec.vectorize(descriptor))

    def test_invalid_k(self, partition):
        with pytest.raises(ValueError, match="k must be"):
            SarVectorizer(SortedUserDictionary(partition.membership), 0)


class TestApproxJaccard:
    def test_identical_histograms(self):
        assert approx_jaccard(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 1.0

    def test_disjoint_histograms(self):
        assert approx_jaccard(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_known_value(self):
        assert approx_jaccard(np.array([2.0, 1.0]), np.array([1.0, 3.0])) == pytest.approx(2.0 / 5.0)

    def test_both_empty(self):
        assert approx_jaccard(np.zeros(3), np.zeros(3)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            approx_jaccard(np.zeros(2), np.zeros(3))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            approx_jaccard(np.array([-1.0]), np.array([1.0]))

    @settings(max_examples=60, deadline=None)
    @given(
        st.sets(st.sampled_from([f"u{i}" for i in range(18)]), max_size=12),
        st.sets(st.sampled_from([f"u{i}" for i in range(18)]), max_size=12),
        st.integers(min_value=1, max_value=6),
    )
    def test_sar_upper_bounds_exact_jaccard(self, users_a, users_b, k):
        """Theorem: s̃J >= sJ for any partition of the user space.

        Histogram intersection over-counts set intersection and histogram
        union under-counts set union, so the approximation can only err
        upward — the paper's information-loss direction.
        """
        universe = sorted(users_a | users_b | {"pad"})
        communities: list[set[str]] = [set() for _ in range(k)]
        for i, user in enumerate(universe):
            communities[i % k].add(user)
        partition = Partition([c for c in communities if c])
        vectorizer = SarVectorizer(
            SortedUserDictionary(partition.membership), partition.k
        )
        da = SocialDescriptor.from_users("a", users_a)
        db = SocialDescriptor.from_users("b", users_b)
        approx = approx_jaccard(vectorizer.vectorize(da), vectorizer.vectorize(db))
        exact = jaccard(da, db)
        assert approx >= exact - 1e-12
        assert 0.0 <= approx <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.sampled_from([f"u{i}" for i in range(12)]), min_size=1, max_size=10))
    def test_singleton_communities_recover_exact_jaccard(self, users):
        """With one user per community, s̃J degenerates to exact sJ."""
        universe = [f"u{i}" for i in range(12)]
        partition = Partition([{user} for user in universe])
        vectorizer = SarVectorizer(SortedUserDictionary(partition.membership), partition.k)
        da = SocialDescriptor.from_users("a", users)
        db = SocialDescriptor.from_users("b", set(universe) - users)
        approx = approx_jaccard(vectorizer.vectorize(da), vectorizer.vectorize(db))
        assert approx == pytest.approx(jaccard(da, db))
