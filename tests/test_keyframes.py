"""Unit tests for keyframe selection and q-gram grouping."""

import numpy as np
import pytest

from repro.video.clip import VideoClip
from repro.video.keyframes import qgrams, segment_qgrams, select_keyframes
from repro.video.shots import Segment


@pytest.fixture()
def indexed_clip():
    """Frames whose [0, 0] pixel equals their index — easy identification."""
    frames = np.stack(
        [np.full((4, 4), i, dtype=np.float32) for i in range(20)]
    )
    return VideoClip("c", frames)


class TestSelectKeyframes:
    def test_even_spacing(self, indexed_clip):
        frames = select_keyframes(indexed_clip, Segment(0, 20), 3)
        assert [int(f[0, 0]) for f in frames] == [0, 10, 19]

    def test_single_keyframe_is_segment_start(self, indexed_clip):
        frames = select_keyframes(indexed_clip, Segment(5, 10), 1)
        assert int(frames[0][0, 0]) == 5

    def test_more_keyframes_than_frames_repeats(self, indexed_clip):
        frames = select_keyframes(indexed_clip, Segment(3, 5), 5)
        assert len(frames) == 5
        assert {int(f[0, 0]) for f in frames} <= {3, 4}

    def test_invalid_count(self, indexed_clip):
        with pytest.raises(ValueError, match=">= 1"):
            select_keyframes(indexed_clip, Segment(0, 5), 0)


class TestQgrams:
    def test_bigrams_overlap(self):
        frames = [np.full((2, 2), i) for i in range(4)]
        grams = qgrams(frames, 2)
        assert len(grams) == 3
        assert int(grams[1][0][0, 0]) == 1
        assert int(grams[1][1][0, 0]) == 2

    def test_exact_length_gives_single_gram(self):
        frames = [np.zeros((2, 2))] * 3
        assert len(qgrams(frames, 3)) == 1

    def test_too_few_keyframes_pads(self):
        frames = [np.full((2, 2), 7.0)]
        grams = qgrams(frames, 2)
        assert len(grams) == 1
        assert len(grams[0]) == 2

    def test_q_below_two_rejected(self):
        with pytest.raises(ValueError, match="q must be >= 2"):
            qgrams([np.zeros((2, 2))], 1)

    def test_empty_keyframes_rejected(self):
        with pytest.raises(ValueError, match="at least one keyframe"):
            qgrams([], 2)


class TestSegmentQgrams:
    def test_default_counts(self, indexed_clip):
        grams = segment_qgrams(indexed_clip, Segment(0, 20), q=2, keyframes_per_segment=3)
        assert len(grams) == 2
        assert all(len(gram) == 2 for gram in grams)
