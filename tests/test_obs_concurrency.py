"""Concurrency stress: metrics aggregation and lazy social re-derivation.

Two single-purpose stress suites backing the serving work:

* :class:`~repro.obs.MetricsRegistry` is hammered from many threads and
  must lose nothing — counters land exactly, histogram counts match the
  number of observations, snapshots taken mid-stress never tear;
* :class:`~repro.core.stores.SocialStore`'s lazy re-derivation (the
  wrapped :class:`DynamicSocialIndex` and the SAR dictionary triple) is
  raced by many concurrent readers right after an invalidation: every
  reader must observe the *same* fully built structures, and the SAR
  rows they read must be bit-identical to a cold rebuild — no torn rows,
  no double builds leaking half-initialised state.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.stores import SocialStore
from repro.obs import MetricsRegistry

THREADS = 8
ROUNDS = 200


def _run_threads(worker, count=THREADS):
    barrier = threading.Barrier(count)

    def wrapped(slot):
        barrier.wait()
        worker(slot)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsRegistryConcurrency:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()

        def worker(slot):
            for _ in range(ROUNDS):
                registry.inc("hits_total")
                registry.inc("weighted_total", 2.5)
                registry.inc("labelled_total", slot=str(slot % 2))

        _run_threads(worker)
        assert registry.value("hits_total") == THREADS * ROUNDS
        assert registry.value("weighted_total") == pytest.approx(
            2.5 * THREADS * ROUNDS
        )
        both = registry.value("labelled_total", slot="0") + registry.value(
            "labelled_total", slot="1"
        )
        assert both == THREADS * ROUNDS

    def test_histograms_count_every_observation(self):
        registry = MetricsRegistry()

        def worker(slot):
            for step in range(ROUNDS):
                registry.observe("latency_seconds", (slot + 1) * 1e-4 * (step + 1))

        _run_threads(worker)
        histogram = registry.snapshot()["histograms"]["latency_seconds"]
        assert histogram["count"] == THREADS * ROUNDS
        assert histogram["buckets"]["+Inf"] == THREADS * ROUNDS

    def test_snapshots_under_write_load_never_tear(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        torn: list[str] = []

        def snapshotter():
            while not stop.is_set():
                snap = registry.snapshot()
                counters = snap["counters"]
                # Invariant maintained by the writers: a_total is bumped
                # before b_total, so a view with b > a must be torn.
                if counters.get("b_total", 0) > counters.get("a_total", 0):
                    torn.append(str(counters))

        reader = threading.Thread(target=snapshotter)
        reader.start()

        def worker(_slot):
            for _ in range(ROUNDS):
                registry.inc("a_total")
                registry.inc("b_total")

        _run_threads(worker)
        stop.set()
        reader.join()
        assert torn == []
        assert registry.value("a_total") == registry.value("b_total")


class TestSocialStoreLazyDerivation:
    @pytest.fixture()
    def descriptors(self, workload):
        return workload.dataset.descriptors(up_to_month=11)

    def test_racing_readers_share_one_rebuild(self, descriptors, config):
        store = SocialStore(descriptors, k=config.k)
        video_ids = sorted(descriptors)
        for round_number in range(6):
            # Serialized mutation marks the store dirty...
            store.apply_comments([(f"stress_user_{round_number}", video_ids[0])])
            seen_indexes: list[object] = []
            seen_dicts: list[object] = []
            lock = threading.Lock()

            def worker(_slot):
                index = store.index
                dicts = store.dictionaries()
                with lock:
                    seen_indexes.append(index)
                    seen_dicts.append(dicts)

            # ...then many readers race the lazy re-derivation.
            _run_threads(worker)
            assert len(set(map(id, seen_indexes))) == 1
            assert len(set(map(id, seen_dicts))) == 1

    def test_no_torn_sar_rows_under_racing_derivation(self, descriptors, config):
        store = SocialStore(descriptors, k=config.k)
        video_ids = sorted(descriptors)
        probes = video_ids[:8]
        for round_number in range(4):
            store.apply_comments([(f"tear_user_{round_number}", video_ids[0])])
            rows_by_thread: dict[int, np.ndarray] = {}
            lock = threading.Lock()

            def worker(slot):
                _, _, sar_h = store.dictionaries()
                rows = np.stack(
                    [sar_h.vectorize(store.descriptors[vid]) for vid in probes]
                )
                with lock:
                    rows_by_thread[slot] = rows

            _run_threads(worker)
            # Oracle: a cold store over the identical descriptor state.
            oracle_store = SocialStore(dict(store.descriptors), k=config.k)
            _, _, oracle = oracle_store.dictionaries()
            expected = np.stack(
                [oracle.vectorize(oracle_store.descriptors[vid]) for vid in probes]
            )
            for slot, rows in rows_by_thread.items():
                np.testing.assert_array_equal(rows, expected, err_msg=f"thread {slot}")

    def test_knn_memo_snapshot_isolated(self, workload, config):
        """The KnnMemo staleness check and the memo tag come from one
        revision snapshot (the satellite bugfix): a mutation between the
        two must not leave the memo tagged with post-mutation revisions
        while holding pre-mutation scores."""
        from repro.core import KTopScoreVideoSearch, LiveCommunityIndex

        dataset = workload.dataset
        live = LiveCommunityIndex(dataset, config)
        search = KTopScoreVideoSearch(live)
        query = live.video_ids[0]
        baseline = search.recommend(query, top_k=5)
        # Interleave: a mutation lands right after the staleness check
        # would have passed; clear_memo must adopt the *checked* snapshot,
        # so the next search still detects the new mutation.
        checked = live.revisions
        live.apply_comments([("memo_user", query)])
        search.clear_memo(checked)
        assert search._memo_revisions == checked
        assert search._memo_revisions != live.revisions
        after = search.recommend(query, top_k=5)
        assert search._memo_revisions == live.revisions
        assert len(after) == 5
        assert len(baseline) == 5
