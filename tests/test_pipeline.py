"""Tests for CommunityIndex construction."""

import numpy as np
import pytest

from repro.core.pipeline import CommunityIndex
from repro.core.config import RecommenderConfig


class TestBuild:
    def test_series_for_every_video(self, workload, index):
        assert set(index.series) == set(workload.dataset.records)
        assert all(len(series) >= 1 for series in index.series.values())

    def test_global_features_for_every_video(self, index):
        assert set(index.features) == set(index.series)
        for features in index.features.values():
            assert features.histogram.sum() == pytest.approx(1.0, abs=1e-6)
            assert features.envelope.shape == (24,)
            assert features.tokens

    def test_lsb_indexed_every_signature(self, index):
        assert len(index.lsb) == sum(len(series) for series in index.series.values())

    def test_social_index_built_with_k(self, index, config):
        assert index.social.k <= max(config.k, index.social.k)
        assert len(index.social.descriptors) == len(index.series)

    def test_sar_backends_agree(self, index):
        descriptor = next(iter(index.social.descriptors.values()))
        assert np.array_equal(
            index.sar.vectorize(descriptor), index.sar_h.vectorize(descriptor)
        )

    def test_maintained_vectors_match_sar(self, index):
        for video_id in list(index.video_ids)[:10]:
            maintained = index.social_vector(video_id)
            fresh = index.sar_h.vectorize(index.descriptor(video_id))
            assert np.allclose(maintained, fresh)

    def test_optional_builds_can_be_skipped(self, workload):
        slim = CommunityIndex(
            workload.dataset,
            RecommenderConfig(k=8),
            build_lsb=False,
            build_global_features=False,
        )
        assert slim.lsb is None
        assert slim.features == {}
        assert len(slim.series) == len(workload.dataset.records)

    def test_rebuild_sorted_dictionary_after_updates(self, workload):
        fresh = CommunityIndex(
            workload.dataset,
            RecommenderConfig(k=8),
            build_lsb=False,
            build_global_features=False,
        )
        comments = [
            (user_id, video_id)
            for user_id in list(fresh.social._user_videos)[:3]
            for video_id in list(fresh.video_ids)[:2]
        ]
        fresh.social.apply_comments(comments)
        fresh.rebuild_sorted_dictionary()
        descriptor = fresh.descriptor(fresh.video_ids[0])
        assert np.array_equal(
            fresh.sar.vectorize(descriptor), fresh.sar_h.vectorize(descriptor)
        )
