"""Tests for dataset and index persistence."""

import gzip
import json
import zlib

import numpy as np
import pytest

from repro.community import CommunityConfig, generate_community
from repro.core import CommunityIndex, RecommenderConfig, csf_sar_h_recommender
from repro.errors import SchemaMismatchError, SnapshotCorruptionError
from repro.io import (
    SCHEMA_VERSION,
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    load_index,
    save_dataset,
    save_index,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_community(CommunityConfig(hours=2.0, seed=33))


class TestDatasetRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, dataset):
        restored = dataset_from_dict(dataset_to_dict(dataset))
        assert restored.records == dataset.records
        assert restored.users == dataset.users
        assert restored.comments == dataset.comments
        assert restored.topics == dataset.topics
        assert restored.clip_params == dataset.clip_params

    def test_clips_rematerialise_identically(self, dataset):
        restored = dataset_from_dict(dataset_to_dict(dataset))
        video_id = sorted(dataset.records)[0]
        assert np.array_equal(
            restored.clip(video_id).frames, dataset.clip(video_id).frames
        )

    def test_file_roundtrip_gzipped(self, dataset, tmp_path):
        path = tmp_path / "community.json.gz"
        save_dataset(dataset, path)
        restored = load_dataset(path)
        assert restored.records == dataset.records
        assert path.stat().st_size > 0

    def test_file_roundtrip_plain_json(self, dataset, tmp_path):
        path = tmp_path / "community.json"
        save_dataset(dataset, path)
        # Plain JSON is human-readable.
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert load_dataset(path).comments == dataset.comments

    def test_wrong_kind_rejected(self, dataset):
        payload = dataset_to_dict(dataset)
        payload["kind"] = "something-else"
        with pytest.raises(ValueError, match="not a community dataset"):
            dataset_from_dict(payload)

    def test_incompatible_schema_rejected(self, dataset):
        payload = dataset_to_dict(dataset)
        payload["schema"] = "999.0"
        with pytest.raises(ValueError, match="incompatible schema"):
            dataset_from_dict(payload)


class TestIndexRoundtrip:
    @pytest.fixture(scope="class")
    def built(self, dataset):
        return CommunityIndex(dataset, RecommenderConfig(k=8))

    def test_roundtrip_preserves_series(self, built, tmp_path):
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        restored = load_index(path)
        assert set(restored.series) == set(built.series)
        for video_id in built.series:
            for original, loaded in zip(built.series[video_id], restored.series[video_id]):
                assert np.allclose(original.values, loaded.values)
                assert np.allclose(original.weights, loaded.weights)

    def test_roundtrip_preserves_features(self, built, tmp_path):
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        restored = load_index(path)
        for video_id in built.features:
            assert np.allclose(
                built.features[video_id].histogram,
                restored.features[video_id].histogram,
            )
            assert built.features[video_id].tokens == restored.features[video_id].tokens

    def test_roundtrip_preserves_config_and_lsb(self, built, tmp_path):
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        restored = load_index(path)
        assert restored.config == built.config
        assert restored.lsb is not None
        assert len(restored.lsb) == len(built.lsb)

    def test_loaded_index_recommends_identically(self, built, tmp_path):
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        restored = load_index(path)
        query = built.video_ids[0]
        assert (
            csf_sar_h_recommender(built).recommend(query, 5)
            == csf_sar_h_recommender(restored).recommend(query, 5)
        )

    def test_wrong_kind_rejected(self, dataset, tmp_path):
        path = tmp_path / "dataset.json.gz"
        save_dataset(dataset, path)
        with pytest.raises(ValueError, match="not a community index"):
            load_index(path)


class TestSnapshotCorruption:
    @pytest.fixture(scope="class")
    def archive(self, dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("corruption") / "index.json.gz"
        save_index(CommunityIndex(dataset, RecommenderConfig(k=8)), path)
        return path

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "absent.json.gz")

    def test_truncated_gzip_raises_typed_error(self, archive, tmp_path):
        stunted = tmp_path / "truncated.json.gz"
        stunted.write_bytes(archive.read_bytes()[: archive.stat().st_size // 2])
        with pytest.raises(SnapshotCorruptionError, match="unreadable snapshot"):
            load_index(stunted)

    def test_flipped_payload_byte_fails_checksum(self, archive, tmp_path):
        document = json.loads(gzip.decompress(archive.read_bytes()))
        # Silent bit rot: change the payload without touching the stored
        # CRC (a watermark of 99 parses fine but was never written).
        document["payload"]["social"]["up_to_month"] = 99
        flipped = tmp_path / "flipped.json.gz"
        flipped.write_bytes(gzip.compress(json.dumps(document).encode()))
        with pytest.raises(SnapshotCorruptionError, match="checksum"):
            load_index(flipped)

    def test_flipped_compressed_byte_raises_typed_error(self, archive, tmp_path):
        raw = bytearray(archive.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        flipped = tmp_path / "flipped.json.gz"
        flipped.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptionError):
            load_index(flipped)

    def test_future_major_schema_raises_typed_error(self, archive, tmp_path):
        document = json.loads(gzip.decompress(archive.read_bytes()))
        document["schema"] = "999.0"
        document["payload"]["schema"] = "999.0"
        document["crc32"] = zlib.crc32(
            json.dumps(
                document["payload"], sort_keys=True, separators=(",", ":")
            ).encode()
        )
        future = tmp_path / "future.json.gz"
        future.write_bytes(gzip.compress(json.dumps(document).encode()))
        with pytest.raises(SchemaMismatchError, match="incompatible schema"):
            load_index(future)

    def test_typed_errors_are_value_errors(self):
        # Backward compatibility: callers catching ValueError keep working.
        assert issubclass(SnapshotCorruptionError, ValueError)
        assert issubclass(SchemaMismatchError, ValueError)

    def test_identical_state_saves_byte_identical_archives(self, dataset, tmp_path):
        built = CommunityIndex(dataset, RecommenderConfig(k=8))
        first, second = tmp_path / "a.json.gz", tmp_path / "b.json.gz"
        save_index(built, first)
        save_index(built, second)
        assert first.read_bytes() == second.read_bytes()

    def test_save_leaves_no_temp_files(self, dataset, tmp_path):
        built = CommunityIndex(dataset, RecommenderConfig(k=8))
        save_index(built, tmp_path / "index.json.gz")
        assert [p.name for p in tmp_path.iterdir()] == ["index.json.gz"]


class TestLiveStateRoundtrip:
    def test_watermark_round_trips(self, dataset, tmp_path):
        built = CommunityIndex(dataset, RecommenderConfig(k=8), up_to_month=14)
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        restored = load_index(path)
        assert restored.up_to_month == 14
        # The watermark shapes the descriptors, so parity must hold too.
        query = built.video_ids[0]
        assert (
            csf_sar_h_recommender(built).recommend(query, 5)
            == csf_sar_h_recommender(restored).recommend(query, 5)
        )

    def test_explicit_watermark_overrides_snapshot(self, dataset, tmp_path):
        built = CommunityIndex(dataset, RecommenderConfig(k=8), up_to_month=14)
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        rederived = load_index(path, up_to_month=11)
        assert rederived.up_to_month == 11
        reference = CommunityIndex(dataset, RecommenderConfig(k=8), up_to_month=11)
        for video_id in reference.video_ids:
            assert (
                rederived.descriptor(video_id).users
                == reference.descriptor(video_id).users
            )

    def test_live_descriptors_survive_roundtrip(self, dataset, tmp_path):
        from repro.core import LiveCommunityIndex

        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        target = live.video_ids[0]
        live.apply_comments([(f"late_user_{i}", target) for i in range(4)])
        path = tmp_path / "index.json.gz"
        save_index(live, path)
        restored = load_index(path)
        assert restored.descriptor(target).users == live.descriptor(target).users
        query = live.video_ids[1]
        assert (
            csf_sar_h_recommender(live).recommend(query, 5)
            == csf_sar_h_recommender(restored).recommend(query, 5)
        )

    def test_revisions_do_not_regress_after_load(self, dataset, tmp_path):
        from repro.core import LiveCommunityIndex

        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        live.retire_video(live.video_ids[-1])
        live.apply_comments([("someone", live.video_ids[0])])
        path = tmp_path / "index.json.gz"
        save_index(live, path)
        restored = load_index(path)
        assert restored.revisions[0] >= live.revisions[0]
        assert restored.revisions[1] >= live.revisions[1]

    def test_loaded_index_is_live(self, dataset, tmp_path):
        built = CommunityIndex(dataset, RecommenderConfig(k=8))
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        restored = load_index(path)
        victim = restored.video_ids[-1]
        restored.retire_video(victim)
        assert victim not in restored.video_ids
        assert victim not in restored.signature_bank().video_ids
