"""Tests for the AFFRF multimodal baseline."""

import pytest

from repro.core.affrf import AffrfRecommender
from repro.core.config import RecommenderConfig
from repro.core.pipeline import CommunityIndex


class TestConstruction:
    def test_requires_global_features(self, workload):
        slim = CommunityIndex(
            workload.dataset, RecommenderConfig(k=8),
            build_lsb=False, build_global_features=False,
        )
        with pytest.raises(ValueError, match="global features"):
            AffrfRecommender(slim)

    def test_parameter_validation(self, index):
        with pytest.raises(ValueError, match="feedback_depth"):
            AffrfRecommender(index, feedback_depth=0)
        with pytest.raises(ValueError, match="feedback_weight"):
            AffrfRecommender(index, feedback_weight=1.5)


class TestRecommend:
    def test_returns_requested_count(self, workload, index):
        results = AffrfRecommender(index).recommend(workload.sources[0], top_k=6)
        assert len(results) == 6

    def test_never_recommends_the_query(self, workload, index):
        recommender = AffrfRecommender(index)
        for source in workload.sources[:3]:
            assert source not in recommender.recommend(source, top_k=10)

    def test_deterministic(self, workload, index):
        recommender = AffrfRecommender(index)
        first = recommender.recommend(workload.sources[0], 10)
        second = recommender.recommend(workload.sources[0], 10)
        assert first == second

    def test_invalid_top_k(self, workload, index):
        with pytest.raises(ValueError, match="top_k"):
            AffrfRecommender(index).recommend(workload.sources[0], 0)

    def test_beats_random_on_average(self, workload, index):
        """AFFRF is weak but must be meaningfully better than chance."""
        dataset = workload.dataset
        recommender = AffrfRecommender(index)
        mean_grade = 0.0
        baseline = 0.0
        all_videos = sorted(dataset.records)
        for source in workload.sources:
            top = recommender.recommend(source, 10)
            mean_grade += sum(dataset.relevance_grade(source, v) for v in top) / 10
            others = [v for v in all_videos if v != source]
            baseline += sum(dataset.relevance_grade(source, v) for v in others) / len(others)
        assert mean_grade > baseline
