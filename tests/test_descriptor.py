"""Tests for social descriptors and exact Jaccard relevance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.social.descriptor import SocialDescriptor, jaccard, jaccard_naive

user_sets = st.sets(st.text(alphabet="abcdefgh", min_size=1, max_size=4), max_size=12)


class TestSocialDescriptor:
    def test_from_users_deduplicates(self):
        descriptor = SocialDescriptor.from_users("v", ["a", "b", "a"])
        assert len(descriptor) == 2

    def test_with_users_is_immutable_extension(self):
        base = SocialDescriptor.from_users("v", ["a"])
        extended = base.with_users(["b"])
        assert len(base) == 1
        assert len(extended) == 2
        assert extended.video_id == "v"


class TestJaccard:
    def test_identical_sets(self):
        descriptor = SocialDescriptor.from_users("v", ["a", "b"])
        assert jaccard(descriptor, descriptor) == 1.0

    def test_disjoint_sets(self):
        a = SocialDescriptor.from_users("v", ["a"])
        b = SocialDescriptor.from_users("w", ["b"])
        assert jaccard(a, b) == 0.0

    def test_known_overlap(self):
        a = SocialDescriptor.from_users("v", ["a", "b", "c"])
        b = SocialDescriptor.from_users("w", ["b", "c", "d"])
        assert jaccard(a, b) == pytest.approx(2.0 / 4.0)

    def test_both_empty_scores_zero(self):
        a = SocialDescriptor.from_users("v", [])
        b = SocialDescriptor.from_users("w", [])
        assert jaccard(a, b) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(user_sets, user_sets)
    def test_naive_matches_set_based(self, users_a, users_b):
        """The quadratic nested-loop version must be semantically identical."""
        a = SocialDescriptor.from_users("v", users_a)
        b = SocialDescriptor.from_users("w", users_b)
        assert jaccard_naive(a, b) == pytest.approx(jaccard(a, b))

    @settings(max_examples=40, deadline=None)
    @given(user_sets, user_sets)
    def test_symmetric_and_bounded(self, users_a, users_b):
        a = SocialDescriptor.from_users("v", users_a)
        b = SocialDescriptor.from_users("w", users_b)
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaccard(b, a))
