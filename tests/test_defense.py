"""Adversarial-workload defense layer: units, gateway wiring, HTTP, parity.

Deterministic single-process tests of every defense mechanism (DESIGN
§16) — the multi-threaded attack torture lives in the chaos scenarios
(``test_chaos_soak.py``):

* :class:`SingleFlight` semantics and the gateway's flash-crowd
  coalescing (follower results bit-identical to the leader's, error
  propagation, timeout fallback to the full serving path);
* hot-key priority admission ordering in the gate;
* :class:`PublishGovernor` deferral arithmetic under an injected clock
  and the gateway's deferred-publication visibility (staleness bound,
  timer flush);
* the :class:`SpamGuard` three-state machine — hold, release-on-clear,
  revoke-on-confirm — including quarantine-WAL restart replay and the
  membership probe that keeps no-op applications non-revocable;
* ``remove_comments`` revocation parity down the whole stack (descriptor
  shrink, partition re-derivation, sketch XOR self-inverse);
* the breaker's half-open concurrent-probe trial (one winner, losers
  short-circuited, failed trial re-opens with jittered backoff);
* the quarantine in front of ``POST /interaction`` (429 for confirmed
  spammers, withheld interactions stay withheld across restart);
* knobs-off parity: the default :class:`DefenseConfig` leaves served
  rankings bit-identical to a gateway without the defense layer.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.core import LiveCommunityIndex
from repro.defense import (
    TIMEOUT,
    DefenseConfig,
    PublishGovernor,
    SingleFlight,
    SpamGuard,
    init_defense_metrics,
    replay_quarantine,
)
from repro.errors import OverloadedError, SpamQuarantinedError
from repro.net import InteractionLog, NetConfig, RecommendService
from repro.obs import MetricsRegistry, use_metrics
from repro.serving import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, GatewayConfig, ServingGateway
from repro.serving.gateway import _AdmissionGate


@pytest.fixture(scope="module")
def live(workload, config):
    """A live index over the test community (mutating tests self-revert)."""
    dataset = workload.dataset
    live = LiveCommunityIndex(dataset.subset(sorted(dataset.records)), config)
    live.dataset.comments = list(dataset.comments)
    return live


@pytest.fixture(scope="module")
def query(live):
    return live.video_ids[0]


# ----------------------------------------------------------------------
# DefenseConfig knobs
# ----------------------------------------------------------------------
class TestDefenseConfig:
    def test_defaults_disable_everything(self):
        config = DefenseConfig()
        assert not config.coalesce
        assert not config.hot_priority
        assert config.min_publish_interval == 0.0
        assert not config.quarantine
        assert not config.serving_enabled

    def test_serving_enabled_flags(self):
        assert DefenseConfig(coalesce=True).serving_enabled
        assert DefenseConfig(hot_priority=True).serving_enabled
        assert DefenseConfig(min_publish_interval=0.1).serving_enabled
        assert not DefenseConfig(quarantine=True).serving_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coalesce_wait": 0.0},
            {"min_publish_interval": -0.1},
            {"max_deferred_mutations": 0},
            {"spam_window": 0.0},
            {"spam_burst": 1},
            {"spam_burst": 8, "spam_confirm": 8},
            {"spam_burst": 8, "spam_clear": 8},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            DefenseConfig(**kwargs)


# ----------------------------------------------------------------------
# SingleFlight
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_first_caller_leads_duplicates_follow(self):
        flights = SingleFlight()
        leader, flight = flights.begin(("q", 5))
        assert leader
        follower, same = flights.begin(("q", 5))
        assert not follower and same is flight
        other, _ = flights.begin(("other", 5))
        assert other  # distinct keys never coalesce

    def test_finish_publishes_result_to_waiters(self):
        flights = SingleFlight()
        _, flight = flights.begin(("q",))
        got = []
        thread = threading.Thread(
            target=lambda: got.append(flights.wait(flight, 5.0))
        )
        thread.start()
        flights.finish(("q",), flight, result="answer")
        thread.join(5.0)
        assert got == ["answer"]
        # The finished flight is gone: the next caller leads again.
        assert flights.begin(("q",))[0]

    def test_leader_error_raises_in_followers(self):
        flights = SingleFlight()
        _, flight = flights.begin(("q",))
        flights.finish(("q",), flight, error=OverloadedError("shed"))
        with pytest.raises(OverloadedError):
            flights.wait(flight, 5.0)

    def test_wait_budget_returns_timeout_sentinel(self):
        flights = SingleFlight()
        _, flight = flights.begin(("q",))
        assert flights.wait(flight, 0.001) is TIMEOUT

    def test_timeout_is_not_a_none_result(self):
        flights = SingleFlight()
        _, flight = flights.begin(("q",))
        flights.finish(("q",), flight, result=None)
        assert flights.wait(flight, 5.0) is None  # a real None, not TIMEOUT


# ----------------------------------------------------------------------
# Gateway coalescing (flash-crowd protection)
# ----------------------------------------------------------------------
def _wedge_serve(gateway, calls_to_wedge=1):
    """Make the next *calls_to_wedge* ``_serve`` calls park on an event.

    Returns ``(entered, hold)``: *entered* fires when a wedged call is
    inside the serving path, *hold* releases it.
    """
    entered, hold = threading.Event(), threading.Event()
    original = gateway._serve
    remaining = [calls_to_wedge]
    lock = threading.Lock()

    def wedged(*args, **kwargs):
        with lock:
            wedge = remaining[0] > 0
            if wedge:
                remaining[0] -= 1
        if wedge:
            entered.set()
            hold.wait(10.0)
        return original(*args, **kwargs)

    gateway._serve = wedged
    return entered, hold


def _park_probe(gateway):
    """Instrument ``SingleFlight.wait`` to signal when a follower parks."""
    parked = threading.Event()
    original = gateway._flights.wait

    def wait(flight, timeout):
        parked.set()
        return original(flight, timeout)

    gateway._flights.wait = wait
    return parked


class TestGatewayCoalescing:
    def _gateway(self, live, **defense_kwargs):
        return ServingGateway(
            live,
            config=GatewayConfig(
                defense=DefenseConfig(coalesce=True, **defense_kwargs)
            ),
        )

    def test_follower_receives_leader_result_bit_identically(self, live, query):
        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = self._gateway(live)
            entered, hold = _wedge_serve(gateway)
            parked = _park_probe(gateway)
            results = {}
            leader = threading.Thread(
                target=lambda: results.update(lead=gateway.recommend(query, 8))
            )
            leader.start()
            assert entered.wait(5.0)
            follower = threading.Thread(
                target=lambda: results.update(follow=gateway.recommend(query, 8))
            )
            follower.start()
            assert parked.wait(5.0)  # follower joined the flight pre-admission
            hold.set()
            leader.join(5.0)
            follower.join(5.0)
        lead, follow = results["lead"], results["follow"]
        assert list(follow) == list(lead)
        assert follow.scores == lead.scores
        assert follow.epoch_id == lead.epoch_id
        assert getattr(follow, "coalesced", False) is True
        assert not getattr(lead, "coalesced", False)
        counters = registry.snapshot()["counters"]
        assert counters["repro_defense_coalesce_leaders_total"] == 1
        assert counters["repro_defense_coalesced_followers_total"] == 1
        # Both calls count as served queries (the follower cost no scan).
        assert counters["repro_serving_queries_total"] == 2

    def test_leader_error_sheds_the_whole_flock(self, live, query):
        gateway = self._gateway(live)
        entered, hold = _wedge_serve(gateway)
        parked = _park_probe(gateway)
        outcomes = {}

        def lead():
            try:
                gateway.recommend(query, 8)
            except OverloadedError as error:
                outcomes["lead"] = error

        def follow():
            try:
                gateway.recommend(query, 8)
            except OverloadedError as error:
                outcomes["follow"] = error

        original = gateway._serve

        def shedding(*args, **kwargs):
            entered.set()
            hold.wait(10.0)
            raise OverloadedError("shed", retry_after_ms=10.0)

        gateway._serve = shedding
        leader = threading.Thread(target=lead)
        leader.start()
        assert entered.wait(5.0)
        follower = threading.Thread(target=follow)
        follower.start()
        assert parked.wait(5.0)
        hold.set()
        leader.join(5.0)
        follower.join(5.0)
        gateway._serve = original
        # One shed leader shed the duplicate too — same typed error.
        assert isinstance(outcomes["lead"], OverloadedError)
        assert isinstance(outcomes["follow"], OverloadedError)

    def test_follower_timeout_falls_back_to_own_scan(self, live, query):
        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = self._gateway(live, coalesce_wait=0.02)
            entered, hold = _wedge_serve(gateway, calls_to_wedge=1)
            results = {}
            leader = threading.Thread(
                target=lambda: results.update(lead=gateway.recommend(query, 8))
            )
            leader.start()
            assert entered.wait(5.0)
            # The follower outwaits its 20ms budget while the leader is
            # wedged, then serves itself (the wedge only holds call #1).
            results["follow"] = gateway.recommend(query, 8)
            hold.set()
            leader.join(5.0)
        assert list(results["follow"]) == list(results["lead"])
        assert not getattr(results["follow"], "coalesced", False)
        counters = registry.snapshot()["counters"]
        assert counters["repro_defense_coalesce_timeouts_total"] == 1
        assert counters.get("repro_defense_coalesced_followers_total", 0) == 0

    def test_sequential_queries_never_coalesce(self, live, query):
        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = self._gateway(live)
            first = gateway.recommend(query, 8)
            second = gateway.recommend(query, 8)
        assert list(first) == list(second)
        assert not getattr(second, "coalesced", False)
        counters = registry.snapshot()["counters"]
        assert counters.get("repro_defense_coalesced_followers_total", 0) == 0


# ----------------------------------------------------------------------
# Sharded gateway: the same defenses on the scatter-gather path
# ----------------------------------------------------------------------
class TestShardedGatewayDefense:
    @pytest.fixture(scope="class")
    def sharded(self, workload, config):
        from repro.sharding import ShardedIndex

        return ShardedIndex.build(workload.dataset, config, 2)

    def test_armed_sharded_gateway_serves_bit_identically(self, live, sharded):
        from repro.sharding import ShardedGateway

        plain = ServingGateway(live)
        defended = ShardedGateway(
            sharded,
            config=GatewayConfig(
                defense=DefenseConfig(coalesce=True, hot_priority=True)
            ),
        )
        try:
            for query in live.video_ids[:4]:
                expected = plain.recommend(query, 8)
                got = defended.recommend(query, 8)
                assert list(got) == list(expected)
                assert got.scores == expected.scores
        finally:
            defended.close()

    def test_sharded_followers_coalesce_onto_one_scatter(self, sharded):
        from repro.sharding import ShardedGateway

        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = ShardedGateway(
                sharded,
                config=GatewayConfig(defense=DefenseConfig(coalesce=True)),
            )
            try:
                query = sharded.video_ids[0]
                entered, hold = threading.Event(), threading.Event()
                original = gateway._admitted_recommend
                wedged_once = []

                def wedged(*args, **kwargs):
                    if not wedged_once:
                        wedged_once.append(True)
                        entered.set()
                        hold.wait(10.0)
                    return original(*args, **kwargs)

                gateway._admitted_recommend = wedged
                parked = threading.Event()
                original_wait = gateway._flights.wait

                def wait(flight, timeout):
                    parked.set()
                    return original_wait(flight, timeout)

                gateway._flights.wait = wait
                results = {}
                leader = threading.Thread(
                    target=lambda: results.update(lead=gateway.recommend(query, 8))
                )
                leader.start()
                assert entered.wait(5.0)
                follower = threading.Thread(
                    target=lambda: results.update(follow=gateway.recommend(query, 8))
                )
                follower.start()
                assert parked.wait(5.0)
                hold.set()
                leader.join(5.0)
                follower.join(5.0)
            finally:
                gateway.close()
        assert list(results["follow"]) == list(results["lead"])
        assert results["follow"].scores == results["lead"].scores
        assert getattr(results["follow"], "coalesced", False) is True
        counters = registry.snapshot()["counters"]
        assert counters["repro_defense_coalesced_followers_total"] == 1


# ----------------------------------------------------------------------
# Hot-key priority admission
# ----------------------------------------------------------------------
class TestHotPriorityGate:
    def test_hot_waiter_admitted_before_queued_cold_scan(self):
        registry = MetricsRegistry()
        gate = _AdmissionGate(1, 4, queue_timeout=5.0, hot_priority=True)
        gate.admit(None, registry)  # occupy the only slot
        order = []

        def waiter(tag, hot):
            gate.admit(None, registry, hot=hot)
            order.append(tag)
            gate.release(registry)

        hot = threading.Thread(target=waiter, args=("hot", True))
        hot.start()
        deadline = time.monotonic() + 5.0
        while gate._waiting_hot < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert gate._waiting_hot == 1
        cold = threading.Thread(target=waiter, args=("cold", False))
        cold.start()
        while gate._waiting < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        gate.release(registry)  # free the slot: the hot waiter must win
        hot.join(5.0)
        cold.join(5.0)
        assert order == ["hot", "cold"]
        assert registry.value("repro_defense_hot_admissions_total") == 1

    def test_hot_flag_inert_without_the_knob(self):
        registry = MetricsRegistry()
        gate = _AdmissionGate(1, 4, queue_timeout=5.0, hot_priority=False)
        gate.admit(None, registry, hot=True)  # free slot: straight in
        gate.release(registry)
        assert registry.value("repro_defense_hot_admissions_total") == 0


# ----------------------------------------------------------------------
# PublishGovernor
# ----------------------------------------------------------------------
class TestPublishGovernor:
    def test_first_publication_never_deferred(self):
        governor = PublishGovernor(1.0, clock=lambda: 0.0)
        assert not governor.should_defer()

    def test_defers_inside_the_interval(self):
        clock = [0.0]
        governor = PublishGovernor(1.0, clock=lambda: clock[0])
        governor.published()
        clock[0] = 0.5
        assert governor.should_defer()
        assert governor.deferred == 1
        assert governor.delay_remaining() == pytest.approx(0.5)
        clock[0] = 1.0
        assert not governor.should_defer()  # interval elapsed
        governor.published()
        assert governor.deferred == 0

    def test_max_deferred_forces_publication_through(self):
        clock = [0.0]
        governor = PublishGovernor(60.0, max_deferred=3, clock=lambda: clock[0])
        governor.published()
        assert governor.should_defer()
        assert governor.should_defer()
        # The third mutation would stack a 3rd deferral: staleness bound.
        assert not governor.should_defer()

    @pytest.mark.parametrize("kwargs", [{"min_interval": 0.0}, {"max_deferred": 0}])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            PublishGovernor(**{"min_interval": 1.0, **kwargs})


class TestGatewayPublishBackpressure:
    def test_mutation_inside_interval_defers_visibility_not_application(
        self, live, query
    ):
        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = ServingGateway(
                live,
                config=GatewayConfig(
                    defense=DefenseConfig(
                        min_publish_interval=60.0, max_deferred_mutations=2
                    )
                ),
            )
            frozen = gateway.current_epoch
            published = gateway.epochs.published_total
            gateway.apply_comments([("u_governor", query)])
            # Applied to the master immediately...
            assert "u_governor" in live.social_store.descriptors[query].users
            # ...but the publication deferred: readers still see the old epoch.
            assert gateway.current_epoch is frozen
            assert gateway.epochs.published_total == published
            assert registry.value("repro_defense_deferred_publishes_total") == 1
            # The staleness bound: the second deferred-in-interval mutation
            # forces the accumulated batch through as one publication.
            gateway.apply_comments([("u_governor2", query)])
            assert gateway.epochs.published_total == published + 1
            current = gateway.current_epoch
            assert "u_governor" in current.descriptor(query).users
            assert "u_governor2" in current.descriptor(query).users
        live.social_store.remove_comments(
            [("u_governor", query), ("u_governor2", query)]
        )

    def test_timer_flushes_deferred_publication(self, live, query):
        gateway = ServingGateway(
            live,
            config=GatewayConfig(
                defense=DefenseConfig(min_publish_interval=0.05)
            ),
        )
        published = gateway.epochs.published_total
        gateway.apply_comments([("u_timer", query)])  # deferred
        assert gateway.epochs.published_total == published
        deadline = time.monotonic() + 5.0
        while (
            gateway.epochs.published_total == published
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert gateway.epochs.published_total == published + 1
        assert "u_timer" in gateway.current_epoch.descriptor(query).users
        live.social_store.remove_comments([("u_timer", query)])

    def test_no_interval_publishes_per_mutation(self, live, query):
        gateway = ServingGateway(live)  # knobs off
        published = gateway.epochs.published_total
        gateway.apply_comments([("u_plain", query)])
        assert gateway.epochs.published_total == published + 1
        live.social_store.remove_comments([("u_plain", query)])


# ----------------------------------------------------------------------
# SpamGuard state machine
# ----------------------------------------------------------------------
GUARD_CONFIG = DefenseConfig(
    quarantine=True, spam_window=10.0, spam_burst=3, spam_confirm=5, spam_clear=1
)


def _guard(clock, wal_path=None, membership=None, config=GUARD_CONFIG):
    return SpamGuard(
        config, wal_path=wal_path, clock=lambda: clock[0], membership=membership
    )


class TestSpamGuard:
    def test_normal_traffic_passes(self):
        guard = _guard([0.0])
        verdict = guard.filter([("alice", "v1"), ("bob", "v2")])
        assert verdict.passed == [("alice", "v1"), ("bob", "v2")]
        assert verdict.held == verdict.blocked == 0
        assert guard.state_of("alice") == "normal"

    def test_burst_quarantines_instead_of_applying(self):
        guard = _guard([0.0])
        assert guard.filter([("bot", "v1"), ("bot", "v2")]).passed  # 2 in window
        verdict = guard.filter([("bot", "v3")])  # 3rd trips spam_burst
        assert verdict.passed == []
        assert verdict.held == 1
        assert guard.state_of("bot") == "suspect"
        assert guard.held_comments == 1
        assert guard.suspect_users == 1

    def test_confirm_revokes_in_window_applications(self):
        clock = [0.0]
        guard = _guard(clock)
        guard.filter([("bot", "v1"), ("bot", "v2")])  # applied while normal
        guard.filter([("bot", "v3"), ("bot", "v4")])  # held (suspect)
        verdict = guard.filter([("bot", "v5")])  # 5th confirms
        assert guard.state_of("bot") == "confirmed"
        assert verdict.revoked == [("bot", "v1"), ("bot", "v2")]
        assert verdict.blocked == 1  # the confirming comment is dropped
        assert guard.held_comments == 0  # held pairs dropped, not released

    def test_confirmed_user_blocked_outright(self):
        guard = _guard([0.0])
        for video in ("v1", "v2", "v3", "v4", "v5"):
            guard.filter([("bot", video)])
        verdict = guard.filter([("bot", "v9"), ("alice", "v1")])
        assert verdict.blocked == 1
        assert verdict.passed == [("alice", "v1")]

    def test_stale_applications_age_out_of_revocation(self):
        clock = [0.0]
        guard = _guard(clock)
        guard.filter([("bot", "v1")])  # applied at t=0
        clock[0] = 100.0  # far outside the 10s window
        guard.filter([("bot", "v2"), ("bot", "v3")])
        guard.filter([("bot", "v4"), ("bot", "v5")])
        verdict = guard.filter([("bot", "v6")])
        assert guard.state_of("bot") == "confirmed"
        # Only the in-window applications are revocable; v1 is ancient.
        assert verdict.revoked == [("bot", "v2"), ("bot", "v3")]

    def test_subsided_burst_released_late_not_lost(self):
        clock = [0.0]
        guard = _guard(clock)
        for video in ("v1", "v2", "v3", "v4"):
            guard.filter([("fan", video)])  # v3, v4 held
        assert guard.state_of("fan") == "suspect"
        clock[0] = 60.0  # window empties: count 0 <= spam_clear
        verdict = guard.poll()
        assert verdict.released == 2
        assert verdict.passed == [("fan", "v3"), ("fan", "v4")]
        assert guard.state_of("fan") == "normal"
        assert guard.held_comments == 0

    def test_released_pairs_become_revocable(self):
        clock = [0.0]
        guard = _guard(clock)
        for video in ("v1", "v2", "v3", "v4"):
            guard.filter([("fan", video)])
        clock[0] = 60.0
        guard.poll()  # releases + applies v3, v4
        # The burst resumes straight to confirmation: the release-time
        # applications are in-window and must be un-applied too.
        for video in ("v5", "v6", "v7", "v8"):
            guard.filter([("fan", video)])
        verdict = guard.filter([("fan", "v9")])
        assert guard.state_of("fan") == "confirmed"
        assert ("fan", "v3") in verdict.revoked
        assert ("fan", "v4") in verdict.revoked

    def test_membership_probe_keeps_noop_applications_irrevocable(self):
        clock = [0.0]
        already = {("bot", "v1")}
        guard = _guard(clock, membership=lambda u, v: (u, v) in already)
        guard.filter([("bot", "v1"), ("bot", "v2")])  # v1 is a no-op apply
        guard.filter([("bot", "v3"), ("bot", "v4")])
        verdict = guard.filter([("bot", "v5")])
        # Revoking the no-op would remove a membership the spammer never
        # added; only the genuinely new v2 application is un-applied.
        assert verdict.revoked == [("bot", "v2")]

    def test_refs_must_align_with_pairs(self):
        guard = _guard([0.0])
        with pytest.raises(ValueError, match="refs"):
            guard.filter([("a", "v1"), ("b", "v2")], refs=[1])

    def test_counters_and_gauges_recorded(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            guard = _guard([0.0])
            for video in ("v1", "v2", "v3", "v4", "v5", "v6"):
                guard.filter([("bot", video)])
        counters = registry.snapshot()["counters"]
        assert counters["repro_defense_quarantined_users_total"] == 1
        assert counters["repro_defense_quarantined_comments_total"] == 2
        assert counters["repro_defense_confirmed_spammers_total"] == 1
        assert counters["repro_defense_revoked_comments_total"] == 2
        assert counters["repro_defense_blocked_comments_total"] == 2
        gauges = registry.snapshot()["gauges"]
        assert gauges["repro_defense_suspect_users"] == 0.0
        assert gauges["repro_defense_held_comments"] == 0.0

    def test_init_defense_metrics_registers_whole_family(self):
        registry = MetricsRegistry()
        init_defense_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["repro_defense_coalesced_followers_total"] == 0
        assert snapshot["counters"]["repro_defense_quarantined_comments_total"] == 0
        assert snapshot["gauges"]["repro_defense_suspect_users"] == 0.0


class TestQuarantineWal:
    def _drive(self, clock, path):
        """Hold two of fan's comments; confirm bot with two revocations."""
        guard = _guard(clock, wal_path=path)
        guard.filter([("fan", "v1")], refs=[1])
        guard.filter([("fan", "v2")], refs=[2])
        guard.filter([("fan", "v3")], refs=[3])  # held
        guard.filter([("fan", "v4")], refs=[4])  # held
        for ref, video in enumerate(("w1", "w2", "w3", "w4", "w5"), start=5):
            guard.filter([("bot", video)], refs=[ref])
        guard.close()
        return guard

    def test_replay_reconstructs_withheld_and_revoked(self, tmp_path):
        path = tmp_path / "quarantine.wal"
        self._drive([0.0], path)
        replay = replay_quarantine(path)
        # fan's held refs + bot's held refs (7, 8) + bot's blocked ref (9).
        assert replay.withheld_refs == {3, 4, 7, 8, 9}
        assert replay.revoke_pairs == [("bot", "w1"), ("bot", "w2")]
        assert set(replay.held) == {"fan"}
        assert [video for _, video, _ in replay.held["fan"]] == ["v3", "v4"]
        assert replay.confirmed == {"bot"}

    def test_restarted_guard_carries_states_across(self, tmp_path):
        path = tmp_path / "quarantine.wal"
        self._drive([0.0], path)
        reborn = _guard([1000.0], wal_path=path)
        assert reborn.state_of("bot") == "confirmed"
        assert reborn.state_of("fan") == "suspect"
        assert reborn.held_comments == 2
        # Confirmed spammers stay blocked after restart.
        verdict = reborn.filter([("bot", "w9")], refs=[10])
        assert verdict.blocked == 1
        reborn.close()

    def test_release_clears_the_replay_holds(self, tmp_path):
        clock = [0.0]
        path = tmp_path / "quarantine.wal"
        guard = _guard(clock, wal_path=path)
        for ref, video in enumerate(("v1", "v2", "v3", "v4"), start=1):
            guard.filter([("fan", video)], refs=[ref])
        clock[0] = 60.0
        guard.poll()  # release
        guard.close()
        replay = replay_quarantine(path)
        # Released pairs re-apply via their original interaction records.
        assert replay.withheld_refs == set()
        assert replay.held == {}
        assert replay.confirmed == set()

    def test_missing_wal_is_an_empty_replay(self, tmp_path):
        replay = replay_quarantine(tmp_path / "nope.wal")
        assert replay.withheld_refs == set()
        assert replay.revoke_pairs == []


# ----------------------------------------------------------------------
# Revocation parity down the stack
# ----------------------------------------------------------------------
class TestRemoveCommentsParity:
    def test_descriptor_without_users(self, live, query):
        descriptor = live.social_store.descriptors[query]
        users = sorted(descriptor.users)[:2]
        shrunk = descriptor.without_users(users)
        assert shrunk.users == descriptor.users - set(users)
        assert shrunk.video_id == descriptor.video_id

    def test_apply_then_remove_restores_descriptors(self, live, query):
        store = live.social_store
        before = store.descriptors[query].users
        store.apply_comments([("u_revoke", query)])
        assert "u_revoke" in store.descriptors[query].users
        assert store.remove_comments([("u_revoke", query)]) == 1
        assert store.descriptors[query].users == before
        # Revoking a membership that does not exist is itself a no-op.
        assert store.remove_comments([("u_revoke", query)]) == 0

    def test_sketch_xor_self_inverse_restores_rows(self, live, query):
        store = live.social_store
        bank = store.sketches()
        row_before, size_before = bank.row(query)
        row_before = row_before.copy()
        store.apply_comments([("u_sketch", query)])
        toggled, _ = bank.row(query)
        assert not np.array_equal(toggled, row_before)
        store.remove_comments([("u_sketch", query)])
        row_after, size_after = bank.row(query)
        assert np.array_equal(row_after, row_before)
        assert size_after == size_before

    def test_gateway_revocation_publishes_clean_epoch(self, live, query):
        gateway = ServingGateway(live)
        baseline = list(gateway.recommend(query, 8))
        spam = [(f"spam-{i}", vid) for i in range(6) for vid in live.video_ids[:3]]
        gateway.apply_comments(spam)
        assert gateway.remove_comments(spam) == len(spam)
        restored = gateway.recommend(query, 8)
        # The post-revocation epoch ranks exactly like the pre-spam one.
        assert list(restored) == baseline
        for vid in live.video_ids[:3]:
            users = gateway.current_epoch.descriptor(vid).users
            assert not any(user.startswith("spam-") for user in users)

    def test_live_index_logs_revocations_to_the_wal(self, workload, config, tmp_path):
        # remove_comments is durable: replaying the WAL over the snapshot
        # reproduces the post-revocation state (spam stays gone).
        from repro.io import WriteAheadLog, recover, save_index

        dataset = workload.dataset
        replica = LiveCommunityIndex(
            dataset.subset(sorted(dataset.records)[:12]), config
        )
        replica.dataset.comments = list(dataset.comments)
        query = replica.video_ids[0]
        snapshot = tmp_path / "snap.json.gz"
        wal_path = tmp_path / "log.jsonl"
        save_index(replica, snapshot)
        with WriteAheadLog(wal_path) as wal:
            replica.attach_wal(wal)
            replica.apply_comments([("u_wal_spam", query)])
            assert replica.remove_comments([("u_wal_spam", query)]) == 1
        recovered = recover(snapshot, wal_path)
        assert recovered.recovery.replayed == 2
        assert "u_wal_spam" not in recovered.social_store.descriptors[query].users


# ----------------------------------------------------------------------
# Knobs-off / knobs-on parity pinning
# ----------------------------------------------------------------------
class TestParityPinning:
    def test_default_defense_config_builds_no_machinery(self, live):
        gateway = ServingGateway(
            live, config=GatewayConfig(defense=DefenseConfig())
        )
        assert gateway._flights is None
        assert gateway._governor is None

    def test_armed_serving_defenses_serve_bit_identically(self, live):
        plain = ServingGateway(live)
        defended = ServingGateway(
            live,
            config=GatewayConfig(
                defense=DefenseConfig(coalesce=True, hot_priority=True)
            ),
        )
        for query in live.video_ids[:4]:
            expected = plain.recommend(query, 8)
            got = defended.recommend(query, 8)
            assert list(got) == list(expected)
            assert got.scores == expected.scores
            assert got.omega_served == expected.omega_served


# ----------------------------------------------------------------------
# Breaker: half-open concurrent probes + jittered re-open backoff
# ----------------------------------------------------------------------
class TestBreakerHalfOpenProbes:
    def _tripped(self, clock, **kwargs):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=5.0, clock=lambda: clock[0], **kwargs
        )
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] += 5.0
        return breaker

    def test_exactly_one_concurrent_trial_admitted(self):
        clock = [0.0]
        breaker = self._tripped(clock)
        admitted = []
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait(5.0)
            admitted.append(breaker.allow())

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        # One winner runs the trial; every loser gets the open-circuit
        # answer and the gateway serves it the degraded ranking instead.
        assert admitted.count(True) == 1
        assert admitted.count(False) == 7
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_budget_admits_n_concurrent_trials(self):
        clock = [0.0]
        breaker = self._tripped(clock, half_open_probes=3, half_open_successes=3)
        assert [breaker.allow() for _ in range(5)] == [
            True, True, True, False, False,
        ]
        for _ in range(3):
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_failed_trial_reopens_with_jittered_backoff(self):
        clock = [0.0]
        breaker = self._tripped(clock, reopen_jitter=0.5, seed=7)
        assert breaker.allow()  # the trial
        breaker.record_failure()
        assert breaker.state == OPEN
        import random

        expected = 5.0 * (1.0 + 0.5 * random.Random(7).random())
        assert breaker._current_cooldown == pytest.approx(expected)
        # The base cooldown alone no longer re-admits probes...
        clock[0] += 5.0
        assert not breaker.allow()
        # ...only the stretched one does.
        clock[0] = 5.0 + expected
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_closed_trip_resets_cooldown_to_base(self):
        clock = [0.0]
        breaker = self._tripped(clock, reopen_jitter=0.5, seed=7)
        assert breaker.allow()
        breaker.record_failure()  # jittered re-open
        stretched = breaker._current_cooldown
        clock[0] = 5.0 + stretched
        assert breaker.allow()
        breaker.record_success()  # closes
        assert breaker.state == CLOSED
        breaker.record_failure()  # fresh trip from CLOSED
        assert breaker.state == OPEN
        assert breaker._current_cooldown == 5.0

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(reopen_jitter=-0.1)


# ----------------------------------------------------------------------
# Quarantine in front of POST /interaction
# ----------------------------------------------------------------------
HTTP_DEFENSE = DefenseConfig(
    quarantine=True, spam_window=300.0, spam_burst=2, spam_confirm=4, spam_clear=0
)


@pytest.fixture()
def qlive(workload, config):
    """A fresh small live index per test (quarantine tests mutate it)."""
    dataset = workload.dataset
    subset = sorted(dataset.records)[:16]
    live = LiveCommunityIndex(dataset.subset(subset), config)
    live.dataset.comments = list(dataset.comments)
    return live


def _qservice(live, tmp_path, name="interactions.wal"):
    return RecommendService(
        ServingGateway(live),
        InteractionLog(tmp_path / name),
        NetConfig(apply_every=1, defense=HTTP_DEFENSE),
    )


class TestInteractionQuarantine:
    def _post(self, service, user, video, interaction_id):
        doc = {"user_id": user, "video_id": video, "interaction_id": interaction_id}
        return service.handle(
            "POST", "/interaction", body=json.dumps(doc).encode("utf-8")
        )

    def _confirm_bot(self, service, videos):
        # 1st applies, 2nd+3rd are held, 4th confirms (all 200: the hold
        # is an internal diversion, not a client error).
        for i, video in enumerate(videos[:4]):
            status, _, _ = self._post(service, "bot", video, f"bot-{i}")
            assert status == 200

    def test_confirmed_spammer_gets_429_with_retry_hint(self, qlive, tmp_path):
        service = _qservice(qlive, tmp_path)
        videos = qlive.video_ids
        self._confirm_bot(service, videos)
        assert service.guard.state_of("bot") == "confirmed"
        status, extra, payload = self._post(service, "bot", videos[0], "bot-5")
        assert status == 429
        body = json.loads(payload.decode("utf-8"))
        assert body["error"]["kind"] == "spam_quarantined"
        assert body["error"]["retry_after_ms"] == pytest.approx(300_000.0)
        assert extra["Retry-After"] == "300"
        # The refused interaction never became durable.
        from repro.net import read_interactions

        ids = [r["interaction_id"] for r in read_interactions(service.interactions.path)]
        assert "bot-5" not in ids
        # Clean users are untouched.
        assert self._post(service, "alice", videos[0], "a-1")[0] == 200
        assert isinstance(SpamQuarantinedError("x"), Exception)

    def test_confirmation_revokes_applied_spam_from_the_index(self, qlive, tmp_path):
        service = _qservice(qlive, tmp_path)
        videos = qlive.video_ids
        self._confirm_bot(service, videos)
        # bot-0 applied when normal, then was revoked on confirmation;
        # the held bot-1/bot-2 were dropped — no trace anywhere.
        for video in videos[:4]:
            assert "bot" not in qlive.social_store.descriptors[video].users

    def test_restart_withholds_quarantined_interactions(self, qlive, tmp_path):
        service = _qservice(qlive, tmp_path, name="restart.wal")
        videos = qlive.video_ids
        self._confirm_bot(service, videos)
        self._post(service, "alice", videos[5], "a-1")
        service.flush()
        # A fresh process over the same logs: the clean interaction
        # replays, the withheld/confirmed spam stays out, and the
        # spammer's confirmed state survives.
        rebuilt = LiveCommunityIndex(
            qlive.dataset.subset(sorted(qlive.dataset.records)[:16]),
            qlive.config,
        )
        rebuilt.dataset.comments = list(qlive.dataset.comments)
        reborn = _qservice(rebuilt, tmp_path, name="restart.wal")
        assert "alice" in rebuilt.social_store.descriptors[videos[5]].users
        for video in videos[:4]:
            assert "bot" not in rebuilt.social_store.descriptors[video].users
        assert reborn.guard.state_of("bot") == "confirmed"
        assert self._post(reborn, "bot", videos[0], "bot-9")[0] == 429

    def test_defense_off_leaves_interactions_unguarded(self, qlive, tmp_path):
        service = RecommendService(
            ServingGateway(qlive),
            InteractionLog(tmp_path / "plain.wal"),
            NetConfig(apply_every=1),
        )
        for i in range(6):
            status, _, _ = self._post(service, "bot", qlive.video_ids[0], f"p-{i}")
            assert status == 200
        assert service.guard is None


# ----------------------------------------------------------------------
# Bounded interaction-dedupe window (adversarial memory pinning)
# ----------------------------------------------------------------------
class TestInteractionDedupeBound:
    def _append(self, log, interaction_id):
        return log.append(
            {
                "user_id": "u1",
                "video_id": "v1",
                "watched_percent": None,
                "liked": 0,
                "interaction_id": interaction_id,
            }
        )

    def test_memory_pinned_under_fresh_id_flood(self, tmp_path):
        # An adversary minting fresh ids must not grow the dedupe set
        # past its window (the log itself grows — that's disk, bounded
        # by rotation/ops — but resident memory is pinned).
        log = InteractionLog(tmp_path / "flood.wal", dedupe_capacity=3)
        for i in range(50):
            seq, duplicate = self._append(log, f"fresh-{i}")
            assert not duplicate
        assert len(log) == 3
        assert log.seq == 50

    def test_exactly_once_within_the_window(self, tmp_path):
        log = InteractionLog(tmp_path / "dedupe.wal", dedupe_capacity=3)
        seq, duplicate = self._append(log, "a")
        assert (seq, duplicate) == (1, False)
        seq, duplicate = self._append(log, "a")  # client retry
        assert duplicate and seq == 1
        from repro.net import read_interactions

        assert len(read_interactions(log.path)) == 1  # logged once

    def test_retry_refreshes_lru_position(self, tmp_path):
        log = InteractionLog(tmp_path / "lru.wal", dedupe_capacity=3)
        for interaction_id in ("a", "b", "c"):
            self._append(log, interaction_id)
        self._append(log, "a")  # retry mid-window: refresh, don't evict
        self._append(log, "d")  # evicts "b" (now the oldest), not "a"
        assert self._append(log, "a")[1] is True
        assert self._append(log, "b")[1] is False  # aged out: new again

    def test_restart_rebuild_is_bounded_too(self, tmp_path):
        path = tmp_path / "restart.wal"
        log = InteractionLog(path, dedupe_capacity=3)
        for i in range(10):
            self._append(log, f"id-{i}")
        log.flush_and_close()
        reopened = InteractionLog(path, dedupe_capacity=3)
        # The rebuild keeps only the most recent window of ids: recent
        # retries still dedupe, ancient ids read as new.
        assert len(reopened) == 3
        assert self._append(reopened, "id-9")[1] is True
        assert self._append(reopened, "id-0")[1] is False

    def test_capacity_validated(self, tmp_path):
        with pytest.raises(ValueError):
            InteractionLog(tmp_path / "bad.wal", dedupe_capacity=0)
