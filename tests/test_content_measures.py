"""Tests for SimC and κJ content relevance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.measures.content import kappa_j, kappa_j_all_pairs, pairwise_sim_matrix, sim_c
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries


def sig(values, weights=None):
    values = np.asarray(values, dtype=float)
    weights = np.ones_like(values) if weights is None else np.asarray(weights, dtype=float)
    return CuboidSignature(values=values, weights=weights)


def series(*signatures):
    return SignatureSeries("s", tuple(signatures))


class TestSimC:
    def test_identical_signatures_have_similarity_one(self):
        signature = sig([1.0, -3.0], [0.4, 0.6])
        assert sim_c(signature, signature) == pytest.approx(1.0)

    def test_decreases_with_distance(self):
        base = sig([0.0])
        assert sim_c(base, sig([1.0])) > sim_c(base, sig([10.0]))

    def test_known_value(self):
        # EMD between point masses at 0 and 1 is 1 => SimC = 0.5.
        assert sim_c(sig([0.0]), sig([1.0])) == pytest.approx(0.5)

    def test_bounded(self):
        assert 0.0 < sim_c(sig([0.0]), sig([100.0])) <= 1.0


class TestPairwiseMatrix:
    def test_shape_and_symmetry_block(self):
        s1 = series(sig([0.0]), sig([5.0]))
        s2 = series(sig([0.0]), sig([5.0]), sig([9.0]))
        matrix = pairwise_sim_matrix(s1, s2)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(1.0)
        assert matrix[1, 1] == pytest.approx(1.0)


class TestKappaJ:
    def test_self_similarity_is_one(self):
        s = series(sig([0.0]), sig([5.0]), sig([-2.0]))
        assert kappa_j(s, s) == pytest.approx(1.0)

    def test_disjoint_series_score_zero(self):
        s1 = series(sig([0.0]))
        s2 = series(sig([100.0]))
        assert kappa_j(s1, s2) == 0.0

    def test_partial_overlap(self):
        s1 = series(sig([0.0]), sig([50.0]))
        s2 = series(sig([0.0]), sig([-50.0]))
        # One perfect match out of |union| = 3.
        assert kappa_j(s1, s2) == pytest.approx(1.0 / 3.0)

    def test_symmetry(self):
        s1 = series(sig([0.0]), sig([3.0]))
        s2 = series(sig([1.0]), sig([8.0]), sig([-4.0]))
        assert kappa_j(s1, s2) == pytest.approx(kappa_j(s2, s1))

    def test_matching_is_one_to_one(self):
        # Two identical query signatures cannot both match the single
        # candidate signature.
        s1 = series(sig([0.0]), sig([0.0]))
        s2 = series(sig([0.0]))
        assert kappa_j(s1, s2) == pytest.approx(1.0 / 2.0)

    def test_threshold_filters_weak_matches(self):
        s1 = series(sig([0.0]))
        s2 = series(sig([3.0]))  # SimC = 0.25
        assert kappa_j(s1, s2, match_threshold=0.5) == 0.0
        assert kappa_j(s1, s2, match_threshold=0.2) > 0.0

    def test_invalid_threshold_rejected(self):
        s = series(sig([0.0]))
        with pytest.raises(ValueError, match="match_threshold"):
            kappa_j(s, s, match_threshold=1.5)

    def test_precomputed_matrix_used(self):
        s1 = series(sig([0.0]))
        s2 = series(sig([0.0]))
        fake = np.array([[0.1]])
        assert kappa_j(s1, s2, match_threshold=0.0, sim_matrix=fake) == pytest.approx(
            0.1 / 1.0
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-20, 20), min_size=1, max_size=4),
           st.lists(st.floats(-20, 20), min_size=1, max_size=4))
    def test_bounded_between_zero_and_one(self, values_a, values_b):
        s1 = series(*[sig([v]) for v in values_a])
        s2 = series(*[sig([v]) for v in values_b])
        score = kappa_j(s1, s2)
        assert 0.0 <= score <= 1.0


class TestKappaJAllPairs:
    def test_upper_bounds_check(self):
        s1 = series(sig([0.0]), sig([1.0]))
        s2 = series(sig([0.0]))
        value = kappa_j_all_pairs(s1, s2)
        assert 0.0 < value <= 1.0

    def test_identical_series(self):
        s = series(sig([0.0]))
        assert kappa_j_all_pairs(s, s) == pytest.approx(0.5)
