"""Sharded index + scatter-gather serving: bit-parity with the oracle.

The contract under test: a :class:`ShardedGateway` over S shards serves
the **same bytes** as one :class:`ServingGateway` over the unsharded
index — same ids, same fused scores, same tie-breaks — across shard
counts, routers, social modes, engines, after mutations, and after
per-shard crash recovery.  Fault and deadline tests pin the degraded
path: one broken or slow shard yields a flagged merged ranking with a
per-shard reason, never a failed query.
"""

from __future__ import annotations

import pathlib
from dataclasses import replace

import pytest

from repro.community import build_workload
from repro.core import LiveCommunityIndex, RecommenderConfig
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serving import GatewayConfig, ServingGateway
from repro.serving.gateway import SERVE_SOCIAL_POINT
from repro.sharding import (
    HashShardRouter,
    ShardedGateway,
    ShardedIndex,
    ZOrderShardRouter,
    attach_wals,
    is_sharded_deployment,
    make_router,
    read_manifest,
    recover_shards,
    save_shards,
    shard_paths,
)
from repro.testing.faults import FaultPlan

TOP_K = 8
NO_DEADLINE = GatewayConfig(default_deadline=None)


@pytest.fixture(scope="module")
def workload():
    return build_workload(hours=4.0, seed=7)


@pytest.fixture(scope="module")
def config():
    return RecommenderConfig()


@pytest.fixture(scope="module")
def oracle(workload, config):
    live = LiveCommunityIndex(workload.dataset, config)
    return ServingGateway(live, config=NO_DEADLINE), live


def _queries(live, every: int = 9, count: int = 6) -> list[str]:
    return list(live.video_ids)[::every][:count]


def _assert_bitwise_equal(expected, actual, context: str = "") -> None:
    assert list(expected) == list(actual), context
    assert expected.scores == actual.scores, context


class TestRouters:
    def test_hash_router_is_stable_and_in_range(self, config):
        router = HashShardRouter(4)
        targets = [router.route(f"v{i:05d}") for i in range(100)]
        assert all(0 <= t < 4 for t in targets)
        assert targets == [router.route(f"v{i:05d}") for i in range(100)]
        assert len(set(targets)) > 1  # not degenerate

    def test_zorder_router_requires_power_of_two(self, config):
        with pytest.raises(ValueError, match="power-of-two"):
            ZOrderShardRouter(3, config)
        ZOrderShardRouter(4, config)  # fine

    def test_zorder_route_is_top_bits_of_key(self, workload, config):
        router = ZOrderShardRouter(4, config)
        from repro.core.stores import ContentStore

        extractor = ContentStore(
            config, build_lsb=False, build_global_features=False
        )
        for video_id in sorted(workload.dataset.records)[:8]:
            series = extractor.extract(workload.dataset.clip(video_id))
            key = router.zorder_key(series)
            expected = key >> (router.total_bits - router.prefix_bits)
            assert router.route(video_id, series) == expected
            assert 0 <= expected < 4

    def test_zorder_route_needs_series(self, config):
        router = ZOrderShardRouter(2, config)
        with pytest.raises(ValueError, match="signature series"):
            router.route("v00000")

    def test_make_router_rejects_unknown(self, config):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("range", 2, config)

    def test_shard_count_validated(self):
        with pytest.raises(ValueError, match="shard count"):
            HashShardRouter(0)


class TestShardedParity:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_shard_count_sweep(self, workload, config, oracle, shards):
        oracle_gw, live = oracle
        sharded = ShardedIndex.build(workload.dataset, config, shards)
        gateway = ShardedGateway(sharded, config=NO_DEADLINE)
        try:
            assert sharded.video_ids == list(live.video_ids)
            for query in _queries(live):
                expected = oracle_gw.recommend(query, TOP_K)
                merged = gateway.recommend(query, TOP_K)
                _assert_bitwise_equal(
                    expected, merged, f"S={shards} query={query}"
                )
                assert not merged.degraded and not merged.partial
        finally:
            gateway.close()

    @pytest.mark.parametrize("social_mode", ["exact", "sar", "sar-h", "sketch"])
    @pytest.mark.parametrize("engine", ["batch", "scalar"])
    def test_mode_engine_matrix(self, workload, config, social_mode, engine):
        live = LiveCommunityIndex(workload.dataset, config)
        oracle_gw = ServingGateway(
            live, social_mode=social_mode, engine=engine, config=NO_DEADLINE
        )
        sharded = ShardedIndex.build(workload.dataset, config, 4)
        gateway = ShardedGateway(
            sharded, social_mode=social_mode, engine=engine, config=NO_DEADLINE
        )
        try:
            for query in _queries(live, every=11, count=4):
                expected = oracle_gw.recommend(query, TOP_K)
                merged = gateway.recommend(query, TOP_K)
                _assert_bitwise_equal(
                    expected, merged, f"{social_mode}/{engine} query={query}"
                )
        finally:
            gateway.close()

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sketch_shard_count_sweep(self, workload, config, shards):
        # Sketch guests ship a (row, size) query vector instead of a SAR
        # histogram; the scatter path must stay bit-identical across
        # shard counts (and seed-stable: both sides sketch with the
        # config's bits/seed).
        live = LiveCommunityIndex(workload.dataset, config)
        oracle_gw = ServingGateway(
            live, social_mode="sketch", config=NO_DEADLINE
        )
        sharded = ShardedIndex.build(workload.dataset, config, shards)
        gateway = ShardedGateway(
            sharded, social_mode="sketch", config=NO_DEADLINE
        )
        try:
            for query in _queries(live):
                _assert_bitwise_equal(
                    oracle_gw.recommend(query, TOP_K),
                    gateway.recommend(query, TOP_K),
                    f"sketch S={shards} query={query}",
                )
        finally:
            gateway.close()

    def test_zorder_router_parity(self, workload, config, oracle):
        oracle_gw, live = oracle
        sharded = ShardedIndex.build(workload.dataset, config, 4, router="zorder")
        gateway = ShardedGateway(sharded, config=NO_DEADLINE)
        try:
            assert sum(sharded.shard_sizes()) == len(live.video_ids)
            for query in _queries(live):
                _assert_bitwise_equal(
                    oracle_gw.recommend(query, TOP_K),
                    gateway.recommend(query, TOP_K),
                    f"zorder query={query}",
                )
        finally:
            gateway.close()

    def test_unknown_query_raises(self, workload, config):
        sharded = ShardedIndex.build(workload.dataset, config, 2)
        gateway = ShardedGateway(sharded, config=NO_DEADLINE)
        try:
            with pytest.raises(KeyError, match="nope"):
                gateway.recommend("nope", TOP_K)
        finally:
            gateway.close()


class TestShardedMutations:
    def _new_records(self, count: int = 4):
        donor = build_workload(hours=2.0, seed=99).dataset
        return [
            replace(donor.records[vid], video_id=f"z{i:05d}")
            for i, vid in enumerate(sorted(donor.records)[:count])
        ]

    def test_mutation_and_recovery_parity(self, workload, config, tmp_path):
        live = LiveCommunityIndex(workload.dataset, config)
        oracle_gw = ServingGateway(live, config=NO_DEADLINE)
        sharded = ShardedIndex.build(workload.dataset, config, 4)
        gateway = ShardedGateway(sharded, config=NO_DEADLINE)
        root = tmp_path / "deployment"
        save_shards(sharded, root)
        attach_wals(sharded, root)

        records = self._new_records()
        victims = list(live.video_ids)[3:5]
        pairs = [
            ("u_mut_1", live.video_ids[0]),
            ("u_mut_2", live.video_ids[7]),
        ]
        with gateway.mutations():
            for record in records:
                gateway.ingest_video(record)
            for victim in victims:
                gateway.retire_video(victim)
            gateway.apply_comments(pairs)
            gateway.advance_watermark(live.up_to_month + 1)
        for record in records:
            oracle_gw.ingest_video(record)
        for victim in victims:
            oracle_gw.retire_video(victim)
        oracle_gw.apply_comments(pairs)
        oracle_gw.advance_watermark(live.up_to_month + 1)

        queries = _queries(live) + [records[0].video_id]
        for query in queries:
            _assert_bitwise_equal(
                oracle_gw.recommend(query, TOP_K),
                gateway.recommend(query, TOP_K),
                f"post-mutation query={query}",
            )
        gateway.close()

        # Crash model: drop the in-memory shards; recover each shard
        # independently from its checkpoint + WAL and re-compare.
        assert is_sharded_deployment(root)
        assert read_manifest(root)["shards"] == 4
        recovered = recover_shards(root)
        assert all(shard.recovery.replayed > 0 for shard in recovered.shards)
        recovered_gw = ShardedGateway(recovered, config=NO_DEADLINE)
        try:
            for query in queries:
                _assert_bitwise_equal(
                    oracle_gw.recommend(query, TOP_K),
                    recovered_gw.recommend(query, TOP_K),
                    f"post-recovery query={query}",
                )
        finally:
            recovered_gw.close()

        # A torn WAL tail on one shard (the crash-interrupted record) is
        # dropped by that shard's replay; the others are untouched.
        _, wal_path = shard_paths(root, 2)
        raw = pathlib.Path(wal_path).read_bytes()
        pathlib.Path(wal_path).write_bytes(raw[:-7])
        torn = recover_shards(root)
        assert torn.shards[2].recovery.torn_tail
        assert not torn.shards[1].recovery.torn_tail

    def test_batched_mutations_publish_once(self, workload, config):
        sharded = ShardedIndex.build(workload.dataset, config, 2)
        gateway = ShardedGateway(sharded, config=NO_DEADLINE)
        try:
            before = [gw.epochs.published_total for gw in gateway.gateways]
            vector_before = gateway.current_epochs
            with gateway.mutations():
                for record in self._new_records(3):
                    gateway.ingest_video(record)
                # Readers still see the pre-block vector mid-batch.
                assert gateway.current_epochs == vector_before
            after = [gw.epochs.published_total for gw in gateway.gateways]
            assert [a - b for a, b in zip(after, before)] == [1, 1]
            assert gateway.current_epochs != vector_before
        finally:
            gateway.close()

    def test_social_replication_spans_shards(self, workload, config):
        sharded = ShardedIndex.build(workload.dataset, config, 4)
        total = set(sharded.video_ids)
        for shard in sharded.shards:
            # Partial content, full social view.
            assert set(shard.content.series) < total or sharded.num_shards == 1
            assert set(shard.social_store.descriptors) == total

    def test_owner_of_routes_and_raises(self, workload, config):
        sharded = ShardedIndex.build(workload.dataset, config, 4)
        video_id = sharded.video_ids[0]
        owner = sharded.owner_of(video_id)
        assert video_id in sharded.shards[owner].content.series
        with pytest.raises(KeyError):
            sharded.owner_of("nope")


class TestShardedDegradation:
    def test_one_shard_fault_burst_degrades_with_reason(self, workload, config):
        sharded = ShardedIndex.build(workload.dataset, config, 4)
        plans = [None, None, FaultPlan(), None]
        plans[2].arm_failures(SERVE_SOCIAL_POINT, -1)
        gateway = ShardedGateway(
            sharded,
            config=GatewayConfig(default_deadline=None, retry_attempts=0),
            faults=plans,
        )
        try:
            result = gateway.recommend(sharded.video_ids[0], TOP_K)
            assert result.degraded and not result.partial
            assert any("shard 2" in reason for reason in result.reasons)
            assert len(result) == TOP_K  # the other shards still merged
            served = [
                r.omega_served
                for r in result.shard_results
                if r is not None
            ]
            assert served.count(0.0) == 1  # only the bursting shard dropped ω
        finally:
            gateway.close()

    def test_breaker_scope_is_per_shard(self, workload, config):
        sharded = ShardedIndex.build(workload.dataset, config, 4)
        plans = [None, None, FaultPlan(), None]
        plans[2].arm_failures(SERVE_SOCIAL_POINT, -1)
        gateway = ShardedGateway(
            sharded,
            config=GatewayConfig(
                default_deadline=None,
                retry_attempts=0,
                breaker_failure_threshold=2,
                breaker_cooldown=60.0,
            ),
            faults=plans,
        )
        try:
            for query in _queries_of(sharded, 3):
                gateway.recommend(query, TOP_K)
            states = [gw.breaker.state for gw in gateway.gateways]
            assert states[2] == "open"
            assert all(state == "closed" for i, state in enumerate(states) if i != 2)
        finally:
            gateway.close()

    def test_slow_shard_yields_partial_not_timeout(self, workload, config):
        sharded = ShardedIndex.build(workload.dataset, config, 4)
        plans = [None, FaultPlan(), None, None]
        plans[1].slow_at[SERVE_SOCIAL_POINT] = 0.5
        gateway = ShardedGateway(sharded, config=NO_DEADLINE, faults=plans)
        try:
            result = gateway.recommend(sharded.video_ids[0], TOP_K, deadline=0.15)
            assert result.partial
            assert any("shard 1" in reason for reason in result.reasons)
            assert result.shard_results[1] is None
            present = [r for r in result.shard_results if r is not None]
            assert len(present) == 3  # everyone else answered in time
        finally:
            gateway.close()


def _queries_of(sharded, count: int) -> list[str]:
    return sharded.video_ids[:count]


class TestShardedMemo:
    def test_repeat_query_hits_and_mutation_invalidates(self, workload, config):
        registry = MetricsRegistry()
        with use_metrics(registry):
            sharded = ShardedIndex.build(workload.dataset, config, 2)
            gateway = ShardedGateway(sharded, config=NO_DEADLINE)
            try:
                query = sharded.video_ids[0]
                first = gateway.recommend(query, TOP_K)
                second = gateway.recommend(query, TOP_K)
                counters = registry.snapshot()["counters"]
                assert counters.get("repro_sharded_memo_hit_total", 0) == 1
                _assert_bitwise_equal(first, second, "memo hit")

                victim = next(
                    vid for vid in reversed(sharded.video_ids) if vid != query
                )
                gateway.retire_video(victim)
                third = gateway.recommend(query, TOP_K)
                counters = registry.snapshot()["counters"]
                assert counters.get("repro_sharded_memo_miss_total", 0) == 2
                assert (
                    counters.get("repro_serving_memo_invalidate_total", 0) >= 1
                )
                assert victim not in list(third)
            finally:
                gateway.close()

    def test_per_shard_metrics_are_labelled(self, workload, config):
        registry = MetricsRegistry()
        with use_metrics(registry):
            sharded = ShardedIndex.build(workload.dataset, config, 2)
            gateway = ShardedGateway(sharded, config=NO_DEADLINE)
            try:
                gateway.recommend(sharded.video_ids[0], TOP_K)
            finally:
                gateway.close()
        gauges = registry.snapshot()["gauges"]
        assert 'repro_shard_videos{shard="0"}' in gauges
        assert 'repro_shard_videos{shard="1"}' in gauges
