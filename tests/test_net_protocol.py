"""Wire protocol: the typed error → status table, hints, body shapes.

The table is the contract between the server, the bundled client and the
docs — these tests assert the *whole* mapping, the subclass ordering that
makes it correct, the ``Retry-After`` hint plumbing, and the canonical
body encodings the netchaos oracle replays bit for bit.
"""

from __future__ import annotations

import json

from repro.errors import (
    DurabilityError,
    NetClientError,
    OverloadedError,
    RateLimitedError,
    ReproError,
    ServingError,
    SocialStoreUnavailableError,
    SpamQuarantinedError,
)
from repro.net.protocol import (
    HEADER_RETRY_AFTER,
    HEADER_RETRY_AFTER_MS,
    STATUS_TABLE,
    dump_body,
    error_envelope,
    map_exception,
    recommendation_body,
    retry_after_headers,
)


class TestStatusTable:
    def test_every_row_maps(self):
        expected = {
            RateLimitedError: (429, "rate_limited"),
            OverloadedError: (429, "overloaded"),
            SpamQuarantinedError: (429, "spam_quarantined"),
            SocialStoreUnavailableError: (503, "social_unavailable"),
            DurabilityError: (500, "durability"),
            ServingError: (500, "serving"),
            NetClientError: (502, "upstream"),
            ReproError: (500, "serving"),
            KeyError: (404, "not_found"),
            ValueError: (400, "bad_request"),
            Exception: (500, "internal"),
        }
        assert {cls: (status, kind) for cls, status, kind in STATUS_TABLE} == expected
        for cls, status, kind in STATUS_TABLE:
            got_status, body, _ = map_exception(cls("boom"))
            assert got_status == status
            assert body["error"]["kind"] == kind

    def test_no_row_shadowed_by_an_earlier_base(self):
        # map_exception walks top to bottom: a row whose class is a
        # subclass of any earlier row's class is unreachable dead code.
        order = [cls for cls, _, _ in STATUS_TABLE]
        for i, earlier in enumerate(order):
            for later in order[i + 1 :]:
                assert not (later is not earlier and issubclass(later, earlier)), (
                    f"{later.__name__} is unreachable behind its base "
                    f"{earlier.__name__}"
                )
        # The concrete cases the server actually relies on:
        assert map_exception(RateLimitedError("x"))[0] == 429  # not ServingError 500
        assert map_exception(OverloadedError("x"))[0] == 429
        assert map_exception(NetClientError("x"))[0] == 502  # not ReproError 500

    def test_no_traceback_ever(self):
        try:
            raise RuntimeError("secret internal detail")
        except RuntimeError as error:
            status, body, headers = map_exception(error)
        assert status == 500
        text = json.dumps(body)
        assert "Traceback" not in text
        assert "File" not in text
        assert body["error"] == {"kind": "internal", "message": "secret internal detail"}

    def test_keyerror_message_unwrapped(self):
        _, body, _ = map_exception(KeyError("unknown video 'v9'"))
        # No quotes-in-quotes from KeyError's repr-style str().
        assert body["error"]["message"] == "unknown video 'v9'"


class TestRetryAfter:
    def test_absent_hint_no_headers(self):
        assert retry_after_headers(None) == {}
        status, body, headers = map_exception(OverloadedError("full"))
        assert status == 429
        assert headers == {}
        assert "retry_after_ms" not in body["error"]

    def test_hint_lands_in_body_and_headers(self):
        status, body, headers = map_exception(
            OverloadedError("full", retry_after_ms=250.0)
        )
        assert status == 429
        assert body["error"]["retry_after_ms"] == 250.0
        assert headers[HEADER_RETRY_AFTER_MS] == "250"
        # Sub-second hints still advertise a whole-second standard header.
        assert headers[HEADER_RETRY_AFTER] == "1"

    def test_standard_header_ceils(self):
        assert retry_after_headers(2500.0)[HEADER_RETRY_AFTER] == "3"
        assert retry_after_headers(2000.0)[HEADER_RETRY_AFTER] == "2"
        # Floor: a 0 hint must not read as "retry immediately".
        tiny = retry_after_headers(0.0)
        assert tiny[HEADER_RETRY_AFTER] == "1"
        assert tiny[HEADER_RETRY_AFTER_MS] == "1"

    def test_rate_limited_hint_forwarded(self):
        status, body, headers = map_exception(
            RateLimitedError("slow down", retry_after_ms=40.0)
        )
        assert status == 429
        assert body["error"]["kind"] == "rate_limited"
        assert headers[HEADER_RETRY_AFTER_MS] == "40"


class _Result(list):
    """Stub gateway result: iterable of ids + serving metadata attrs."""

    def __init__(self, ids, scores=None, **attrs):
        super().__init__(ids)
        if scores is not None:
            self.scores = scores
        for name, value in attrs.items():
            setattr(self, name, value)


class TestBodies:
    def test_error_envelope_shape(self):
        body = error_envelope("bad_request", "nope", retry_after_ms=5.0)
        assert body == {
            "error": {"kind": "bad_request", "message": "nope", "retry_after_ms": 5.0}
        }

    def test_recommendation_body_fields(self):
        result = _Result(
            ["v2", "v7"],
            scores=[0.9, 0.25],
            omega_served=0.7,
            degraded=False,
            partial=False,
            reasons=(),
            scored=12,
            total=14,
        )
        body = recommendation_body("v1", "csf-sar-h", 10, result, 3, 5)
        assert body["query"] == "v1"
        assert body["algorithm"] == "csf-sar-h"
        assert body["top_k"] == 10
        assert body["recommendations"] == [
            {"videoId": "v2", "score": 0.9},
            {"videoId": "v7", "score": 0.25},
        ]
        assert body["epoch"] == 5
        assert body["applied_seq"] == 3
        assert body["omega_served"] == 0.7
        assert body["degraded"] is False
        assert body["partial"] is False
        assert body["scored"] == 12
        assert body["total"] == 14

    def test_recommendation_body_without_scores(self):
        body = recommendation_body("v1", "knn", 5, _Result(["v2"]), 0, 0)
        assert body["recommendations"] == [{"videoId": "v2"}]

    def test_dump_body_is_canonical(self):
        payload = dump_body({"b": 1, "a": {"z": 2, "y": 3}})
        assert payload == b'{"a":{"y":3,"z":2},"b":1}'
        assert json.loads(payload) == {"b": 1, "a": {"z": 2, "y": 3}}
