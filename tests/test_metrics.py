"""Tests for AR / AC / AP / MAP metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.evaluation.metrics import (
    average_accuracy,
    average_precision,
    average_rating,
    mean_average_precision,
)

ratings = st.lists(st.floats(min_value=1.0, max_value=5.0, allow_nan=False), min_size=1, max_size=20)


class TestAverageRating:
    def test_mean(self):
        assert average_rating([5.0, 3.0, 4.0]) == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            average_rating([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[1, 5\]"):
            average_rating([0.5])

    @given(ratings)
    def test_bounded(self, values):
        assert 1.0 <= average_rating(values) <= 5.0


class TestAverageAccuracy:
    def test_counts_strictly_above_threshold(self):
        assert average_accuracy([4.5, 4.0, 5.0, 1.0]) == pytest.approx(0.5)

    def test_all_relevant(self):
        assert average_accuracy([4.1, 4.9]) == 1.0

    def test_none_relevant(self):
        assert average_accuracy([1.0, 4.0]) == 0.0

    @given(ratings)
    def test_bounded(self, values):
        assert 0.0 <= average_accuracy(values) <= 1.0


class TestAveragePrecision:
    def test_all_relevant_is_one(self):
        assert average_precision([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_nothing_relevant_is_zero(self):
        assert average_precision([1.0, 2.0]) == 0.0

    def test_relevance_early_beats_late(self):
        early = average_precision([5.0, 1.0, 1.0])
        late = average_precision([1.0, 1.0, 5.0])
        assert early > late

    def test_known_value(self):
        # Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        assert average_precision([5.0, 1.0, 5.0]) == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    @given(ratings)
    def test_bounded(self, values):
        assert 0.0 <= average_precision(values) <= 1.0


class TestMap:
    def test_mean_of_aps(self):
        queries = [[5.0, 1.0], [1.0, 5.0]]
        expected = (average_precision(queries[0]) + average_precision(queries[1])) / 2
        assert mean_average_precision(queries) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one query"):
            mean_average_precision([])
