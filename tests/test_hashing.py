"""Tests for shift-add-xor hashing and the chained hash table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.hashing import ChainedHashTable, shift_add_xor

names = st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=20)


class TestShiftAddXor:
    def test_deterministic(self):
        assert shift_add_xor("alice") == shift_add_xor("alice")

    def test_different_strings_usually_differ(self):
        values = {shift_add_xor(f"user{i}") for i in range(1000)}
        assert len(values) == 1000  # 64-bit space: no collisions expected

    def test_seed_changes_hash(self):
        assert shift_add_xor("bob", seed=1) != shift_add_xor("bob", seed=2)

    def test_empty_string_returns_seed(self):
        assert shift_add_xor("", seed=31) == 31

    @given(names)
    def test_fits_in_64_bits(self, name):
        assert 0 <= shift_add_xor(name) < 2**64


class TestChainedHashTable:
    def test_insert_and_lookup(self):
        table = ChainedHashTable(num_buckets=8)
        table.insert("alice", 3)
        assert table.lookup("alice") == 3
        assert "alice" in table

    def test_missing_key_returns_none(self):
        table = ChainedHashTable()
        assert table.lookup("ghost") is None
        assert "ghost" not in table

    def test_insert_overwrites_existing_key(self):
        table = ChainedHashTable(num_buckets=4)
        table.insert("alice", 1)
        table.insert("alice", 9)
        assert table.lookup("alice") == 9
        assert len(table) == 1

    def test_delete(self):
        table = ChainedHashTable(num_buckets=4)
        table.insert("a", 1)
        assert table.delete("a") is True
        assert table.lookup("a") is None
        assert table.delete("a") is False
        assert len(table) == 0

    def test_delete_middle_of_chain(self):
        table = ChainedHashTable(num_buckets=1)  # force one chain
        for i in range(5):
            table.insert(f"u{i}", i)
        assert table.delete("u2")
        assert table.lookup("u2") is None
        for i in (0, 1, 3, 4):
            assert table.lookup(f"u{i}") == i

    def test_relabel(self):
        table = ChainedHashTable(num_buckets=4)
        for i in range(10):
            table.insert(f"u{i}", i % 2)
        changed = table.relabel(0, 7)
        assert changed == 5
        assert all(cno in (7, 1) for _, cno in table.items())

    def test_items_yields_every_entry(self):
        table = ChainedHashTable(num_buckets=4)
        expected = {f"u{i}": i for i in range(20)}
        for key, cno in expected.items():
            table.insert(key, cno)
        assert dict(table.items()) == expected

    def test_chain_lengths_sum_to_size(self):
        table = ChainedHashTable(num_buckets=8)
        for i in range(50):
            table.insert(f"u{i}", 0)
        assert sum(table.chain_lengths()) == 50

    def test_average_collisions_zero_when_empty(self):
        assert ChainedHashTable().average_collisions() == 0.0

    def test_average_collisions_single_bucket(self):
        table = ChainedHashTable(num_buckets=1)
        for i in range(4):
            table.insert(f"u{i}", 0)
        # Every probe scans the 3 other entries on average.
        assert table.average_collisions() == pytest.approx(3.0)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError, match="num_buckets"):
            ChainedHashTable(num_buckets=0)

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(names, st.integers(min_value=0, max_value=100), max_size=40))
    def test_matches_dict_semantics(self, mapping):
        """Property: the chained table behaves exactly like a dict."""
        table = ChainedHashTable(num_buckets=7)
        for key, value in mapping.items():
            table.insert(key, value)
        assert len(table) == len(mapping)
        for key, value in mapping.items():
            assert table.lookup(key) == value
        assert dict(table.items()) == mapping
