"""The chaos soak acceptance bar: concurrent serving is torn-read free.

One full seeded soak (4 writers x 16 readers, >= 10k served queries by
default; ``CHAOS_SOAK_QUERIES`` scales attempts) runs module-scoped, and
the tests assert its invariants: zero reader/writer exceptions, every
query bit-identical to a serial oracle over its pinned epoch, bounded
shed/degraded rates, epochs fully retired, and the breaker driven through
its whole trip -> open -> half-open -> close cycle by the fault schedule.

A second module-scoped soak runs the same pressure against the sharded
scatter-gather path (``shards=2``): skewed writer pools, one-shard fault
bursts rotating across the shard set, per-shard serial-oracle replay of
every scattered slice plus a deterministic re-merge of the served
ranking, and every shard's own breaker driven through its full cycle.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.defense import DefenseConfig
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN
from repro.testing.chaos import SoakConfig, SoakReport, _dump_artifact, run_soak

QUERIES = int(os.environ.get("CHAOS_SOAK_QUERIES", "12000"))


@pytest.fixture(scope="module")
def report():
    return run_soak(SoakConfig(queries=QUERIES, seed=2015))


class TestSoakInvariants:
    def test_scale_floor(self, report):
        # The acceptance floor: >= 4x16 for >= 10k served queries (scaled
        # runs via CHAOS_SOAK_QUERIES keep the proportion).
        assert report.queries_total >= min(10_000, int(QUERIES * 0.8))

    def test_zero_torn_reads_or_exceptions(self, report):
        assert report.reader_errors == []
        assert report.writer_errors == []

    def test_every_query_matches_serial_oracle(self, report):
        assert report.parity_checked == report.queries_total
        assert report.parity_failures == []
        assert report.ok

    def test_rates_bounded(self, report):
        # Admission is deliberately overloaded, so shedding happens — but
        # it must stay a minority, and most service stays full-fidelity.
        assert 0.0 < report.shed_rate < 0.5
        assert 0.0 < report.degraded_rate < 0.5

    def test_deadlines_produced_partials(self, report):
        assert report.queries_partial > 0

    def test_mutations_landed_and_epochs_drained(self, report):
        assert report.writer_ops == 4 * 25
        assert report.epochs_published == report.writer_ops + 1
        # Readers have drained: only the current epoch is still live.
        assert report.epochs_live == 1
        assert report.epochs_retired == report.epochs_published - 1

    def test_breaker_cycled_and_recovered(self, report):
        assert (CLOSED, OPEN) in report.breaker_transitions
        assert (OPEN, HALF_OPEN) in report.breaker_transitions
        assert (HALF_OPEN, CLOSED) in report.breaker_transitions
        # Disarmed faults + recovery probes leave the breaker closed.
        assert report.breaker_transitions[-1][1] == CLOSED

    def test_metrics_instrumented(self, report):
        counters = report.metrics["counters"]
        gauges = report.metrics["gauges"]
        assert counters["repro_serving_queries_total"] == report.queries_total
        assert sum(
            count
            for name, count in counters.items()
            if name.startswith("repro_serving_shed_total")
        ) == report.queries_shed
        assert counters["repro_serving_degraded_total"] == report.queries_degraded
        assert counters["repro_serving_deadline_miss_total"] == report.queries_partial
        assert counters["repro_serving_retries_total"] > 0
        assert "repro_serving_breaker_state" in gauges
        assert "repro_serving_epoch_age_seconds" in gauges
        assert "repro_serving_queue_depth" in gauges

    def test_latency_percentiles_reported(self, report):
        assert 0 < report.latencies_ms["p50"] <= report.latencies_ms["p99"]


@pytest.fixture(scope="module")
def sharded_report():
    return run_soak(SoakConfig(queries=QUERIES, seed=2015, shards=2))


class TestShardedSoakInvariants:
    SHARDS = 2

    def test_scale_floor(self, sharded_report):
        assert sharded_report.queries_total >= min(10_000, int(QUERIES * 0.8))

    def test_zero_torn_reads_or_exceptions(self, sharded_report):
        assert sharded_report.reader_errors == []
        assert sharded_report.writer_errors == []

    def test_every_query_replayed_or_memo_covered(self, sharded_report):
        # Every served query either replayed against per-shard oracles
        # (slices + deterministic merge) or was a clean memo hit whose
        # producing record replayed under the same epoch vector.
        assert (
            sharded_report.parity_checked + sharded_report.queries_memoized
            == sharded_report.queries_total
        )
        assert sharded_report.parity_checked > 0
        assert sharded_report.parity_failures == []
        assert sharded_report.ok

    def test_one_shard_bursts_degraded_but_did_not_stop_service(
        self, sharded_report
    ):
        # Rotating single-shard faults must show up as degraded merged
        # results (with the other shard still answering), never outages.
        assert sharded_report.queries_degraded > 0
        assert 0.0 < sharded_report.degraded_rate < 0.5

    def test_deadlines_produced_partials(self, sharded_report):
        assert sharded_report.queries_partial > 0

    def test_mutations_landed_and_epochs_drained(self, sharded_report):
        assert sharded_report.writer_ops == 4 * 25
        # Every mutation republishes all shards (plus each shard's
        # initial epoch); only the S current epochs stay live.
        assert sharded_report.epochs_published == self.SHARDS * (
            sharded_report.writer_ops + 1
        )
        assert sharded_report.epochs_live == self.SHARDS
        assert (
            sharded_report.epochs_retired
            == sharded_report.epochs_published - self.SHARDS
        )

    def test_writer_skew_still_populated_every_shard(self, sharded_report):
        assert len(sharded_report.shard_sizes) == self.SHARDS
        assert all(size > 0 for size in sharded_report.shard_sizes)

    def test_every_shards_breaker_cycled_and_recovered(self, sharded_report):
        assert len(sharded_report.shard_breaker_transitions) == self.SHARDS
        for transitions in sharded_report.shard_breaker_transitions:
            assert (CLOSED, OPEN) in transitions
            assert (OPEN, HALF_OPEN) in transitions
            assert (HALF_OPEN, CLOSED) in transitions
            assert transitions[-1][1] == CLOSED

    def test_sharded_metrics_instrumented(self, sharded_report):
        counters = sharded_report.metrics["counters"]
        gauges = sharded_report.metrics["gauges"]
        assert (
            counters["repro_sharded_queries_total"]
            == sharded_report.queries_total
        )
        assert (
            counters["repro_sharded_degraded_total"]
            == sharded_report.queries_degraded
        )
        assert (
            counters["repro_sharded_deadline_miss_total"]
            == sharded_report.queries_partial
        )
        assert (
            counters["repro_sharded_memo_hit_total"]
            == sharded_report.queries_memoized
        )
        for shard in range(self.SHARDS):
            assert f'repro_shard_epoch_id{{shard="{shard}"}}' in gauges
            assert f'repro_shard_videos{{shard="{shard}"}}' in gauges

    def test_latency_percentiles_reported(self, sharded_report):
        assert (
            0
            < sharded_report.latencies_ms["p50"]
            <= sharded_report.latencies_ms["p99"]
        )


@pytest.fixture(scope="module")
def sketch_report():
    # A smaller soak (same writer/reader/fault pressure) running both the
    # gateway under chaos and the serial oracle on the odd-sketch bank.
    return run_soak(
        SoakConfig(
            queries=max(1_000, QUERIES // 6), seed=2016, social_mode="sketch"
        )
    )


class TestSketchModeSoak:
    def test_zero_torn_reads_or_exceptions(self, sketch_report):
        assert sketch_report.reader_errors == []
        assert sketch_report.writer_errors == []

    def test_every_query_matches_serial_oracle(self, sketch_report):
        # Sketch banks are maintained incrementally under writer churn;
        # the oracle re-derives per pinned epoch — parity proves the
        # incremental toggles never diverged from a cold sketch.
        assert sketch_report.parity_checked == sketch_report.queries_total
        assert sketch_report.parity_failures == []
        assert sketch_report.ok

    def test_mutations_landed_and_epochs_drained(self, sketch_report):
        assert sketch_report.writer_ops == 4 * 25
        assert sketch_report.epochs_live == 1

    def test_sharded_sketch_soak_holds_parity(self):
        report = run_soak(
            SoakConfig(
                queries=max(1_000, QUERIES // 6),
                seed=2017,
                shards=2,
                social_mode="sketch",
            )
        )
        assert report.reader_errors == [] and report.writer_errors == []
        assert (
            report.parity_checked + report.queries_memoized
            == report.queries_total
        )
        assert report.parity_failures == []
        assert report.ok


def _adversarial_config(scenario, **overrides):
    """A small paced soak with the scenario's defense armed.

    Readers are paced so the attack window spans real wall time and the
    recovery tail is measurable even at smoke scale.
    """
    base = dict(
        queries=800,
        writers=2,
        readers=6,
        seed=2018,
        hours=2.0,
        base_videos=10,
        reader_pause=0.001,
        attack_start=0.25,
        attack_end=0.55,
        recovery_window=0.1,
        scenario=scenario,
    )
    base.update(overrides)
    return SoakConfig(**base)


class TestAdversarialScenarios:
    """Smoke-scale runs of the DESIGN §16 attack scenarios (the full
    pressure versions run in the adversarial bench / CI soak job)."""

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            SoakConfig(scenario="ddos")

    def test_attack_knobs_validated(self):
        with pytest.raises(ValueError):
            SoakConfig(scenario="flash_crowd", attack_start=0.8, attack_end=0.2)
        with pytest.raises(ValueError):
            SoakConfig(scenario="flash_crowd", attack_threads=0)

    def test_flash_crowd_coalesces_under_parity(self):
        report = run_soak(
            _adversarial_config(
                "flash_crowd",
                defense=DefenseConfig(coalesce=True, hot_priority=True),
                attack_threads=4,
                attack_ops=200,
            )
        )
        assert report.ok
        assert report.reader_errors == [] and report.attack_errors == []
        assert report.attack_ops_done > 0
        counters = report.metrics["counters"]
        # The crowd's identical misses collapsed into shared flights, and
        # every coalesced answer still matched the serial oracle.
        assert counters.get("repro_defense_coalesced_followers_total", 0) >= 1
        assert report.parity_failures == []
        assert report.attack_window is not None
        assert report.baseline_p99_ms is not None

    def test_spam_burst_quarantined_and_rankings_hold(self):
        report = run_soak(
            _adversarial_config(
                "spam_burst",
                defense=DefenseConfig(
                    quarantine=True,
                    spam_window=5.0,
                    spam_burst=8,
                    spam_confirm=24,
                    spam_clear=2,
                ),
                attack_threads=4,
                attack_ops=250,
                # Full-fidelity final recommends for the rank measurement.
                fault_burst_every=0.0,
            )
        )
        assert report.ok
        assert report.attack_errors == []
        assert report.attack_ops_done > 0
        assert report.quarantine["confirmed_users"] >= 1
        # The post-attack rankings overlap the clean pre-attack oracle:
        # hold/block/revoke left (nearly) no spam trace in the index.
        assert report.rank_correlation is not None
        assert report.rank_correlation >= 0.9

    def test_retire_storm_absorbed_by_the_governor(self):
        report = run_soak(
            _adversarial_config(
                "retire_storm",
                defense=DefenseConfig(min_publish_interval=0.05),
                attack_ops=40,
                attack_pause=0.002,
            )
        )
        assert report.ok
        assert report.attack_errors == []
        assert report.attack_ops_done > 0
        counters = report.metrics["counters"]
        # The storm's per-mutation publications collapsed into deferred
        # batches instead of epoch thrash.
        assert counters.get("repro_defense_deferred_publishes_total", 0) >= 1
        assert report.epochs_live == 1  # still drains to one live epoch


class TestArtifacts:
    def test_failing_run_dumps_replayable_schedule(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CHAOS_ARTIFACT_DIR", str(tmp_path))
        config = SoakConfig(queries=16, writers=1, readers=1, base_videos=8, hours=2.0)
        failing = SoakReport(config_seed=config.seed)
        failing.parity_failures.append({"query_id": "v0", "got": [], "expected": ["v1"]})
        path = _dump_artifact(config, failing)
        assert path is not None and os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            schedule = json.load(handle)
        assert schedule["config"]["seed"] == config.seed
        assert schedule["report"]["ok"] is False
        assert schedule["report"]["parity_failures"]

    def test_no_artifact_dir_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("CHAOS_ARTIFACT_DIR", raising=False)
        assert _dump_artifact(SoakConfig(), SoakReport(config_seed=0)) is None
