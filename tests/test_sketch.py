"""Odd-sketch social similarity: estimator properties, bank maintenance,
and ``social_mode="sketch"`` end-to-end parity.

Three layers of guarantees:

1. **Estimator** — :func:`estimate_jaccard` tracks exact set Jaccard
   within the odd-sketch error bound on random set pairs, nails the
   degenerate cases (identical, disjoint, empty), and the batched
   :func:`sketch_jaccard_batch` is bit-identical to the scalar loop.
2. **Bank** — incremental ``add_user`` / ``remove_user`` toggles stay
   bit-identical to a cold :func:`sketch_users` over the same set (XOR
   self-inverse round-trip), through :class:`SocialStore` mutations in
   both exact and incremental maintenance modes.
3. **Mode** — ``social_mode="sketch"`` serves through the full stack:
   recommender scalar/batch engines agree, snapshots round-trip the
   sketch matrix bit-for-bit, WAL recovery re-derives it, and cold
   rebuilds are seed-stable.

Satellite coverage rides along: :func:`approx_jaccard_batch` degenerate
-vector parity with scalar :func:`approx_jaccard` (the SAR analogue of
layer 1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.community import build_workload
from repro.core import CommunityIndex, LiveCommunityIndex, RecommenderConfig
from repro.core.recommender import SOCIAL_MODES, FusionRecommender
from repro.core.stores import SocialStore
from repro.io import WriteAheadLog, load_index, recover, save_index
from repro.social.descriptor import SocialDescriptor, jaccard
from repro.social.sar import approx_jaccard, approx_jaccard_batch
from repro.social.sketch import (
    DEFAULT_SKETCH_BITS,
    SketchBank,
    estimate_jaccard,
    sketch_jaccard_batch,
    sketch_users,
)

BITS = DEFAULT_SKETCH_BITS


def users(prefix: str, count: int, start: int = 0) -> list[str]:
    return [f"{prefix}{i}" for i in range(start, start + count)]


def estimate_sets(first: list[str], second: list[str], *, bits: int = BITS) -> float:
    row_a, size_a = sketch_users(first, bits=bits)
    row_b, size_b = sketch_users(second, bits=bits)
    return estimate_jaccard(row_a, size_a, row_b, size_b)


class TestSketchUsers:
    def test_deterministic_and_order_insensitive(self):
        row_a, size_a = sketch_users(["u1", "u2", "u3"])
        row_b, size_b = sketch_users(["u3", "u1", "u2"])
        np.testing.assert_array_equal(row_a, row_b)
        assert size_a == size_b == 3

    def test_seed_changes_bit_pattern(self):
        many = users("u", 64)
        row_a, _ = sketch_users(many, seed=0)
        row_b, _ = sketch_users(many, seed=1)
        assert not np.array_equal(row_a, row_b)

    def test_empty_set_is_zero_row(self):
        row, size = sketch_users([])
        assert size == 0
        assert not row.any()
        assert row.shape == (BITS // 64,)
        assert row.dtype == np.uint64

    def test_bits_validated(self):
        for bad in (0, 32, 63, 100):
            with pytest.raises(ValueError, match="multiple of 64"):
                sketch_users(["u"], bits=bad)


class TestEstimator:
    def test_identical_sets_score_one(self):
        row, size = sketch_users(users("u", 40))
        assert estimate_jaccard(row, size, row.copy(), size) == 1.0

    def test_both_empty_score_zero(self):
        row, _ = sketch_users([])
        assert estimate_jaccard(row, 0, row.copy(), 0) == 0.0

    def test_one_empty_scores_near_zero(self):
        empty, _ = sketch_users([])
        row, size = sketch_users(users("u", 30))
        assert estimate_jaccard(empty, 0, row, size) <= 0.1

    def test_disjoint_sets_score_near_zero(self):
        assert estimate_sets(users("a", 30), users("b", 30)) <= 0.1

    def test_tracks_exact_jaccard_on_random_pairs(self, rng):
        """Mean |Ĵ - J| stays small over seeded random set pairs."""
        errors = []
        for _ in range(150):
            universe = users("u", 400)
            size_a = int(rng.integers(5, 200))
            size_b = int(rng.integers(5, 200))
            first = list(rng.choice(universe, size=size_a, replace=False))
            second = list(rng.choice(universe, size=size_b, replace=False))
            exact = jaccard(
                SocialDescriptor.from_users("a", first),
                SocialDescriptor.from_users("b", second),
            )
            errors.append(abs(estimate_sets(first, second) - exact))
        errors = np.asarray(errors)
        assert errors.mean() < 0.05
        assert errors.max() < 0.25

    def test_estimates_bounded_in_unit_interval(self, rng):
        for _ in range(50):
            first = users("a", int(rng.integers(0, 120)))
            shared = int(rng.integers(0, max(1, len(first))))
            second = first[:shared] + users("b", int(rng.integers(0, 120)))
            estimate = estimate_sets(first, second)
            assert 0.0 <= estimate <= 1.0

    def test_saturated_sketch_clamps_to_zero(self):
        # An XOR with every bit set is outside the estimator's support
        # (fill ratio >= 1): Δ̂ saturates to +inf and Ĵ clamps to 0.
        full = np.full(1, np.uint64(0xFFFFFFFFFFFFFFFF))
        empty = np.zeros(1, dtype=np.uint64)
        assert estimate_jaccard(full, 500, empty, 500) == 0.0

    def test_shape_mismatch_rejected(self):
        row, size = sketch_users(users("u", 4), bits=128)
        other, other_size = sketch_users(users("u", 4), bits=256)
        with pytest.raises(ValueError, match="shapes differ"):
            estimate_jaccard(row, size, other, other_size)

    def test_negative_sizes_rejected(self):
        row, _ = sketch_users(users("u", 4))
        with pytest.raises(ValueError, match="non-negative"):
            estimate_jaccard(row, -1, row, 4)


class TestSketchBatch:
    def _bank_rows(self, rng, count: int = 25):
        universe = users("u", 300)
        sets = []
        for _ in range(count):
            size = int(rng.integers(0, 180))
            sets.append(list(rng.choice(universe, size=size, replace=False)))
        sketched = [sketch_users(s) for s in sets]
        matrix = np.stack([row for row, _ in sketched])
        sizes = np.array([size for _, size in sketched], dtype=np.int64)
        return sets, matrix, sizes

    def test_batch_matches_scalar_bitwise(self, rng):
        sets, matrix, sizes = self._bank_rows(rng)
        query_row, query_size = sketch_users(sets[3])
        batch = sketch_jaccard_batch(query_row, query_size, matrix, sizes)
        scalar = np.array(
            [
                estimate_jaccard(query_row, query_size, matrix[i], int(sizes[i]))
                for i in range(matrix.shape[0])
            ]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_empty_query_matches_scalar(self, rng):
        _, matrix, sizes = self._bank_rows(rng, count=8)
        empty, _ = sketch_users([])
        batch = sketch_jaccard_batch(empty, 0, matrix, sizes)
        scalar = np.array(
            [
                estimate_jaccard(empty, 0, matrix[i], int(sizes[i]))
                for i in range(matrix.shape[0])
            ]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_zero_row_matrix(self):
        empty, _ = sketch_users([])
        scores = sketch_jaccard_batch(empty, 0, np.zeros((0, BITS // 64), dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert scores.shape == (0,)

    def test_validation(self):
        row, size = sketch_users(users("u", 4))
        matrix = np.stack([row, row])
        sizes = np.array([size, size], dtype=np.int64)
        with pytest.raises(ValueError, match="matrix must be"):
            sketch_jaccard_batch(row, size, matrix[:, :4], sizes)
        with pytest.raises(ValueError, match="entries"):
            sketch_jaccard_batch(row, size, matrix, sizes[:1])
        with pytest.raises(ValueError, match="non-negative"):
            sketch_jaccard_batch(row, size, matrix, np.array([-1, 2]))
        with pytest.raises(ValueError, match="non-negative"):
            sketch_jaccard_batch(row, -2, matrix, sizes)


class TestSketchBank:
    def test_ingest_retire_and_membership(self):
        bank = SketchBank()
        bank.ingest("v1", users("u", 5))
        bank.ingest("v2", [])
        assert "v1" in bank and "v2" in bank and len(bank) == 2
        assert bank.video_ids == ["v1", "v2"]
        assert bank.row("v2")[1] == 0
        bank.retire("v1")
        assert "v1" not in bank
        bank.retire("v1")  # idempotent
        with pytest.raises(KeyError):
            bank.row("v1")

    def test_add_remove_round_trip_restores_exact_row(self):
        bank = SketchBank()
        base = users("u", 20)
        bank.ingest("v", base)
        before = bank.row("v")[0].copy()
        bank.add_user("v", "newcomer")
        assert not np.array_equal(bank.row("v")[0], before)
        bank.remove_user("v", "newcomer")
        row, size = bank.row("v")
        np.testing.assert_array_equal(row, before)
        assert size == len(base)

    def test_incremental_adds_match_cold_sketch(self):
        bank = SketchBank()
        bank.ingest("v", users("u", 10))
        for extra in users("x", 30):
            bank.add_user("v", extra)
        cold_row, cold_size = sketch_users(users("u", 10) + users("x", 30))
        row, size = bank.row("v")
        np.testing.assert_array_equal(row, cold_row)
        assert size == cold_size

    def test_remove_from_empty_rejected(self):
        bank = SketchBank()
        bank.ingest("v", [])
        with pytest.raises(ValueError, match="remove_user on empty"):
            bank.remove_user("v", "ghost")

    def test_estimate_and_matrix_agree_with_rows(self):
        bank = SketchBank()
        bank.ingest("a", users("u", 30))
        bank.ingest("b", users("u", 30, start=15))
        matrix, sizes = bank.matrix(["b", "a"])
        np.testing.assert_array_equal(matrix[0], bank.row("b")[0])
        np.testing.assert_array_equal(matrix[1], bank.row("a")[0])
        assert sizes.tolist() == [30, 30]
        assert bank.estimate("a", "b") == estimate_jaccard(
            matrix[1], sizes[1], matrix[0], sizes[0]
        )
        with pytest.raises(KeyError):
            bank.matrix(["a", "missing"])

    def test_matrix_rows_are_copies(self):
        bank = SketchBank()
        bank.ingest("a", users("u", 8))
        matrix, _ = bank.matrix(["a"])
        frozen = matrix.copy()
        bank.add_user("a", "later")
        np.testing.assert_array_equal(matrix, frozen)

    def test_nbytes_fixed_per_video(self):
        bank = SketchBank(bits=512)
        bank.ingest("tiny", users("u", 2))
        bank.ingest("huge", users("u", 5000))
        assert bank.nbytes() == 2 * (512 // 64 * 8 + 8)


class TestStoreMaintainsSketches:
    """The store-level purity invariant: incrementally maintained bank ==
    cold rebuild from the final descriptors, bit for bit."""

    def _store(self, video_users: dict[str, list[str]]) -> SocialStore:
        descriptors = {
            vid: SocialDescriptor.from_users(vid, us)
            for vid, us in video_users.items()
        }
        return SocialStore(descriptors, k=4)

    def _assert_matches_cold(self, store: SocialStore) -> None:
        bank = store.sketches()
        cold = SketchBank()
        for video_id, descriptor in store.descriptors.items():
            cold.ingest(video_id, descriptor.users)
        assert sorted(bank.video_ids) == sorted(cold.video_ids)
        for video_id in cold.video_ids:
            live_row, live_size = bank.row(video_id)
            cold_row, cold_size = cold.row(video_id)
            np.testing.assert_array_equal(live_row, cold_row, err_msg=video_id)
            assert live_size == cold_size

    def test_add_and_retire_video(self):
        store = self._store({"v1": users("a", 6), "v2": users("b", 4)})
        store.sketches()  # build, then mutate incrementally
        store.add_video(SocialDescriptor.from_users("v3", users("c", 9)))
        store.retire_video("v2")
        self._assert_matches_cold(store)

    def test_exact_comments_with_duplicates(self):
        store = self._store({"v1": users("a", 3)})
        store.sketches()
        store.apply_comments(
            [
                ("a0", "v1"),  # already present: must not double-toggle
                ("fresh", "v1"),
                ("fresh", "v1"),  # duplicate within batch
                ("solo", "v_new"),  # new video via comment
            ]
        )
        self._assert_matches_cold(store)

    def test_incremental_comments_with_duplicates(self):
        store = self._store(
            {"v1": users("a", 4), "v2": users("a", 4, start=2)}
        )
        store.sketches()
        store.apply_comments(
            [
                ("a2", "v1"),  # genuinely new to v1
                ("a2", "v1"),  # batch duplicate
                ("a3", "v2"),  # already in v2's descriptor
                ("z9", "v2"),
            ],
            incremental=True,
        )
        self._assert_matches_cold(store)

    def test_lazy_bank_absorbs_pre_build_mutations(self):
        store = self._store({"v1": users("a", 5)})
        # Mutate before any sketch exists; first access derives from the
        # post-mutation descriptors.
        store.add_video(SocialDescriptor.from_users("v2", users("b", 3)))
        store.apply_comments([("late", "v1")])
        self._assert_matches_cold(store)


@pytest.fixture(scope="module")
def sketch_workload():
    return build_workload(hours=2.0, seed=21)


@pytest.fixture(scope="module")
def sketch_config():
    return RecommenderConfig(k=8)


class TestSketchMode:
    def test_mode_registered(self):
        assert "sketch" in SOCIAL_MODES

    def test_config_validates_sketch_bits(self):
        with pytest.raises(ValueError, match="sketch_bits"):
            RecommenderConfig(sketch_bits=100)
        assert RecommenderConfig(sketch_bits=128, sketch_seed=7).sketch_seed == 7

    def test_social_relevance_tracks_exact(self, index):
        scorer = FusionRecommender(index, social_mode="sketch")
        exact = FusionRecommender(index, social_mode="exact")
        ids = index.video_ids[:6]
        for first in ids:
            for second in ids:
                left = index.descriptor(first)
                right = index.descriptor(second)
                estimate = scorer.social_relevance(left, right)
                assert 0.0 <= estimate <= 1.0
                assert estimate == pytest.approx(
                    exact.social_relevance(left, right), abs=0.25
                )

    def test_scalar_batch_and_pruned_paths_agree(self, index):
        # TestEngineParity already sweeps sketch through engine="batch"
        # vs "scalar"; this pins the pruned fast scan used by recommend()
        # against the exhaustive scalar ranking on the same index.
        scalar = FusionRecommender(index, social_mode="sketch", engine="scalar")
        batch = FusionRecommender(index, social_mode="sketch", engine="batch")
        for query in index.video_ids[::7][:4]:
            assert scalar.recommend(query, 10) == batch.recommend(query, 10)
            left = scalar.component_scores(query)
            right = batch.component_scores(query)
            for vid, (_, social) in left.items():
                assert social == right[vid][1], vid

    def test_snapshot_round_trip_is_bit_identical(
        self, sketch_workload, sketch_config, tmp_path
    ):
        built = CommunityIndex(sketch_workload.dataset, sketch_config)
        path = tmp_path / "index.json.gz"
        save_index(built, path)
        restored = load_index(path)
        orig_matrix, orig_sizes = built.sketch_matrix()
        back_matrix, back_sizes = restored.sketch_matrix()
        np.testing.assert_array_equal(orig_matrix, back_matrix)
        np.testing.assert_array_equal(orig_sizes, back_sizes)
        query = built.video_ids[0]
        before = FusionRecommender(built, social_mode="sketch")
        after = FusionRecommender(restored, social_mode="sketch")
        assert before.recommend(query, 8) == after.recommend(query, 8)
        assert before.component_scores(query) == after.component_scores(query)

    def test_wal_recovery_rederives_sketches(
        self, sketch_workload, sketch_config, tmp_path
    ):
        live = LiveCommunityIndex(sketch_workload.dataset, sketch_config)
        snapshot = tmp_path / "snap.json.gz"
        save_index(live, snapshot)
        wal_path = tmp_path / "wal.jsonl"
        with WriteAheadLog(wal_path) as wal:
            live.attach_wal(wal)
            target = live.video_ids[0]
            victim = live.video_ids[-1]
            live.apply_comments([("wal_user_a", target), ("wal_user_b", target)])
            live.retire_video(victim)
        recovered = recover(snapshot, wal_path)
        live_matrix, live_sizes = live.sketch_matrix()
        rec_matrix, rec_sizes = recovered.sketch_matrix()
        assert recovered.video_ids == live.video_ids
        np.testing.assert_array_equal(live_matrix, rec_matrix)
        np.testing.assert_array_equal(live_sizes, rec_sizes)

    def test_live_mutations_match_cold_rebuild(self, sketch_workload, sketch_config):
        live = LiveCommunityIndex(sketch_workload.dataset, sketch_config)
        target = live.video_ids[0]
        live.apply_comments([("m_u1", target), ("m_u2", target), ("m_u1", target)])
        live.retire_video(live.video_ids[-1])
        bank = live.social_store.sketches()
        for video_id in live.video_ids:
            cold_row, cold_size = sketch_users(
                live.social_store.descriptors[video_id].users
            )
            row, size = bank.row(video_id)
            np.testing.assert_array_equal(row, cold_row, err_msg=video_id)
            assert size == cold_size

    def test_cold_rebuilds_are_seed_stable(self, sketch_workload, sketch_config):
        first = CommunityIndex(sketch_workload.dataset, sketch_config)
        second = CommunityIndex(sketch_workload.dataset, sketch_config)
        query = first.video_ids[2]
        left = FusionRecommender(first, social_mode="sketch")
        right = FusionRecommender(second, social_mode="sketch")
        assert left.recommend(query, 8) == right.recommend(query, 8)
        assert left.component_scores(query) == right.component_scores(query)

    def test_sketch_seed_changes_bank_not_contract(self, sketch_workload):
        base = CommunityIndex(sketch_workload.dataset, RecommenderConfig(k=8))
        reseeded = CommunityIndex(
            sketch_workload.dataset, RecommenderConfig(k=8, sketch_seed=99)
        )
        assert not np.array_equal(
            base.sketch_matrix()[0], reseeded.sketch_matrix()[0]
        )
        np.testing.assert_array_equal(
            base.sketch_matrix()[1], reseeded.sketch_matrix()[1]
        )


class TestApproxJaccardBatchDegenerates:
    """Satellite: SAR's batched estimator on degenerate vectors must keep
    scalar parity — zero rows, zero queries, empty matrices."""

    def test_zero_rows_score_zero_like_scalar(self, rng):
        matrix = rng.uniform(0.0, 3.0, size=(6, 5))
        matrix[1] = 0.0
        matrix[4] = 0.0
        query = rng.uniform(0.0, 3.0, size=5)
        batch = approx_jaccard_batch(query, matrix)
        scalar = np.array([approx_jaccard(query, row) for row in matrix])
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-12)
        assert batch[1] == scalar[1]

    def test_zero_query_all_zero(self, rng):
        matrix = rng.uniform(0.0, 3.0, size=(4, 5))
        query = np.zeros(5)
        batch = approx_jaccard_batch(query, matrix)
        scalar = np.array([approx_jaccard(query, row) for row in matrix])
        np.testing.assert_array_equal(batch, scalar)

    def test_both_zero_scores_zero(self):
        batch = approx_jaccard_batch(np.zeros(3), np.zeros((2, 3)))
        assert batch.tolist() == [0.0, 0.0]
        assert approx_jaccard(np.zeros(3), np.zeros(3)) == 0.0

    def test_empty_matrix(self):
        scores = approx_jaccard_batch(np.ones(3), np.zeros((0, 3)))
        assert scores.shape == (0,)
