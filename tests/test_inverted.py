"""Tests for the sub-community inverted file."""


import pytest

from repro.index.inverted import InvertedFile


class TestAddVideo:
    def test_video_listed_under_touched_communities(self):
        inverted = InvertedFile(4)
        inverted.add_video("a", [2, 0, 1, 0])
        assert "a" in inverted.postings(0)
        assert "a" in inverted.postings(2)
        assert "a" not in inverted.postings(1)

    def test_re_add_moves_postings(self):
        inverted = InvertedFile(3)
        inverted.add_video("a", [1, 0, 0])
        inverted.add_video("a", [0, 1, 0])
        assert inverted.postings(0) == []
        assert inverted.postings(1) == ["a"]
        assert len(inverted) == 1

    def test_wrong_dimension_rejected(self):
        inverted = InvertedFile(3)
        with pytest.raises(ValueError, match="does not match"):
            inverted.add_video("a", [1, 0])

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="at least one"):
            InvertedFile(0)


class TestCandidates:
    def test_union_over_nonzero_dimensions(self):
        inverted = InvertedFile(3)
        inverted.add_video("a", [1, 0, 0])
        inverted.add_video("b", [0, 1, 0])
        inverted.add_video("c", [1, 1, 0])
        assert set(inverted.candidates([1, 1, 0])) == {"a", "b", "c"}

    def test_zero_query_returns_nothing(self):
        inverted = InvertedFile(2)
        inverted.add_video("a", [1, 0])
        assert inverted.candidates([0, 0]) == []

    def test_dominant_community_first(self):
        inverted = InvertedFile(2)
        inverted.add_video("a", [1, 0])
        inverted.add_video("b", [0, 1])
        assert inverted.candidates([1, 5])[0] == "b"

    def test_no_duplicates(self):
        inverted = InvertedFile(2)
        inverted.add_video("a", [1, 1])
        assert inverted.candidates([1, 1]) == ["a"]

    def test_query_dimension_validated(self):
        inverted = InvertedFile(2)
        with pytest.raises(ValueError, match="does not match"):
            inverted.candidates([1.0])


class TestRemove:
    def test_remove_clears_postings(self):
        inverted = InvertedFile(2)
        inverted.add_video("a", [1, 1])
        inverted.remove_video("a")
        assert "a" not in inverted
        assert inverted.postings(0) == []
        assert len(inverted) == 0

    def test_remove_missing_is_noop(self):
        inverted = InvertedFile(2)
        inverted.remove_video("ghost")
        assert len(inverted) == 0
