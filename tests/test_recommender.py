"""Tests for the fusion recommenders (CR / SR / CSF and SAR variants)."""

import pytest

from repro.core.recommender import (
    FusionRecommender,
    content_recommender,
    csf_recommender,
    csf_sar_h_recommender,
    csf_sar_recommender,
    rank_components,
    social_recommender,
)


class TestConstruction:
    def test_named_constructors(self, index):
        assert content_recommender(index).name == "CR"
        assert social_recommender(index).name == "SR"
        assert csf_recommender(index).name == "CSF"
        assert csf_sar_recommender(index).name == "CSF-SAR"
        assert csf_sar_h_recommender(index).name == "CSF-SAR-H"

    def test_omega_defaults_to_config(self, index):
        assert csf_recommender(index).omega == pytest.approx(index.config.omega)

    def test_invalid_social_mode(self, index):
        with pytest.raises(ValueError, match="social mode"):
            FusionRecommender(index, social_mode="bogus")

    def test_invalid_content_measure(self, index):
        with pytest.raises(ValueError, match="content measure"):
            FusionRecommender(index, content_measure="bogus")

    def test_invalid_omega(self, index):
        with pytest.raises(ValueError, match="omega"):
            FusionRecommender(index, omega=2.0)


class TestRecommend:
    def test_returns_requested_count(self, workload, index):
        recommender = csf_sar_h_recommender(index)
        results = recommender.recommend(workload.sources[0], top_k=7)
        assert len(results) == 7

    def test_never_recommends_the_query(self, workload, index):
        recommender = csf_recommender(index)
        for source in workload.sources[:3]:
            assert source not in recommender.recommend(source, top_k=10)

    def test_results_sorted_by_score(self, workload, index):
        recommender = csf_sar_h_recommender(index)
        query = workload.sources[0]
        results = recommender.recommend(query, top_k=10)
        scores = [recommender.score(query, candidate) for candidate in results]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_query_rejected(self, index):
        with pytest.raises(KeyError, match="unknown video"):
            csf_recommender(index).recommend("ghost")

    def test_invalid_top_k(self, workload, index):
        with pytest.raises(ValueError, match="top_k"):
            csf_recommender(index).recommend(workload.sources[0], top_k=0)

    def test_exact_and_naive_social_agree_on_ranking(self, workload, index):
        exact = FusionRecommender(index, omega=1.0, social_mode="exact")
        naive = FusionRecommender(index, omega=1.0, social_mode="naive")
        query = workload.sources[0]
        assert exact.recommend(query, 10) == naive.recommend(query, 10)

    def test_sar_and_sar_h_agree_on_ranking(self, workload, index):
        sar = csf_sar_recommender(index)
        sar_h = csf_sar_h_recommender(index)
        query = workload.sources[1]
        assert sar.recommend(query, 10) == sar_h.recommend(query, 10)

    def test_content_only_finds_near_duplicates_first(self, workload, index):
        dataset = workload.dataset
        recommender = content_recommender(index)
        hits = 0
        opportunities = 0
        for source in workload.sources:
            near_dups = {
                v for v in dataset.records
                if v != source and dataset.relevance_grade(source, v) == 2
            }
            if not near_dups:
                continue
            opportunities += 1
            top = set(recommender.recommend(source, top_k=10))
            if near_dups & top:
                hits += 1
        if opportunities:
            assert hits / opportunities >= 0.5


class TestComponentScores:
    def test_components_cover_all_candidates(self, workload, index):
        recommender = csf_recommender(index)
        components = recommender.component_scores(workload.sources[0])
        assert len(components) == len(index.video_ids) - 1
        for content, social in components.values():
            assert 0.0 <= content <= 1.0
            assert 0.0 <= social <= 1.0

    def test_rank_components_extremes(self, workload, index):
        recommender = FusionRecommender(index, omega=0.5, social_mode="exact")
        query = workload.sources[0]
        components = recommender.component_scores(query)
        content_rank = rank_components(components, omega=0.0, top_k=5)
        social_rank = rank_components(components, omega=1.0, top_k=5)
        expected_content = sorted(
            components, key=lambda v: (-components[v][0], v)
        )[:5]
        expected_social = sorted(
            components, key=lambda v: (-components[v][1], v)
        )[:5]
        assert content_rank == expected_content
        assert social_rank == expected_social
