"""Unit and property tests for the video cuboid signature."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.signatures.cuboid import CuboidSignature, merge_blocks, signature_from_qgram


class TestCuboidSignature:
    def test_weights_are_normalised(self):
        signature = CuboidSignature(values=np.array([1.0, 2.0]), weights=np.array([3.0, 1.0]))
        assert signature.weights.sum() == pytest.approx(1.0)
        assert signature.weights[0] == pytest.approx(0.75)

    def test_size(self):
        signature = CuboidSignature(values=np.array([0.0, 1.0, 2.0]), weights=np.ones(3))
        assert signature.size == 3
        assert len(signature) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one cuboid"):
            CuboidSignature(values=np.array([]), weights=np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching lengths"):
            CuboidSignature(values=np.array([1.0]), weights=np.array([0.5, 0.5]))

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            CuboidSignature(values=np.array([1.0, 2.0]), weights=np.array([1.0, 0.0]))


class TestMergeBlocks:
    def test_uniform_frame_merges_to_one_region(self):
        labels = merge_blocks(np.full((4, 4), 100.0), merge_threshold=5.0)
        assert labels.max() == 0

    def test_distinct_halves_produce_two_regions(self):
        means = np.zeros((4, 4))
        means[:, 2:] = 200.0
        labels = merge_blocks(means, merge_threshold=10.0)
        assert labels.max() == 1
        assert len(np.unique(labels[:, :2])) == 1
        assert len(np.unique(labels[:, 2:])) == 1

    def test_zero_threshold_keeps_distinct_blocks_apart(self):
        means = np.arange(16, dtype=np.float64).reshape(4, 4) * 10
        labels = merge_blocks(means, merge_threshold=0.0)
        assert labels.max() == 15

    def test_labels_are_contiguous_from_zero(self):
        rng = np.random.default_rng(3)
        means = rng.uniform(0, 255, (6, 6))
        labels = merge_blocks(means, merge_threshold=20.0)
        unique = np.unique(labels)
        assert unique[0] == 0
        assert np.array_equal(unique, np.arange(unique.size))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            merge_blocks(np.zeros((2, 2)), merge_threshold=-1.0)

    def test_diagonal_blocks_not_merged(self):
        # 4-connectivity: diagonal similarity alone must not merge.
        means = np.array([[0.0, 100.0], [100.0, 0.0]])
        labels = merge_blocks(means, merge_threshold=5.0)
        assert labels[0, 0] != labels[0, 1]
        assert len(np.unique(labels)) == 4


class TestSignatureFromQgram:
    def test_static_qgram_has_zero_values(self):
        frame = np.full((16, 16), 120.0, dtype=np.float32)
        signature = signature_from_qgram([frame, frame], grid=4)
        assert np.allclose(signature.values, 0.0)
        assert signature.weights.sum() == pytest.approx(1.0)

    def test_uniform_drift_is_captured(self):
        first = np.full((16, 16), 100.0, dtype=np.float32)
        second = np.full((16, 16), 110.0, dtype=np.float32)
        signature = signature_from_qgram([first, second], grid=4)
        assert signature.size == 1
        assert signature.values[0] == pytest.approx(10.0)

    def test_split_drift_produces_two_cuboids(self):
        first = np.full((16, 16), 100.0, dtype=np.float32)
        second = first.copy()
        second[:, 8:] += 40.0  # right half brightens
        signature = signature_from_qgram([first, second], grid=4, merge_threshold=5.0)
        assert signature.size == 1  # reference frame is uniform: one region
        # With a non-uniform reference the regions split:
        third = first.copy()
        third[:, 8:] += 80.0
        signature2 = signature_from_qgram([third, third + 10.0], grid=4, merge_threshold=5.0)
        assert signature2.size == 2

    def test_trigram_averages_consecutive_changes(self):
        frames = [np.full((8, 8), level, dtype=np.float32) for level in (100.0, 110.0, 130.0)]
        signature = signature_from_qgram(frames, grid=2)
        # Total drift 30 over 2 steps: mean change 15.
        assert signature.values[0] == pytest.approx(15.0)

    def test_single_keyframe_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            signature_from_qgram([np.zeros((8, 8), dtype=np.float32)])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="share one shape"):
            signature_from_qgram(
                [np.zeros((8, 8), dtype=np.float32), np.zeros((4, 4), dtype=np.float32)]
            )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=8))
    def test_mass_always_normalised(self, q, grid):
        rng = np.random.default_rng(q * 100 + grid)
        frames = [rng.uniform(0, 255, (16, 16)).astype(np.float32) for _ in range(q)]
        signature = signature_from_qgram(frames, grid=grid, merge_threshold=10.0)
        assert signature.weights.sum() == pytest.approx(1.0)
        assert signature.size <= grid * grid
