"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "community.json.gz"
    assert main(["generate", str(path), "--hours", "2", "--seed", "5"]) == 0
    return path


@pytest.fixture(scope="module")
def index_path(dataset_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-index") / "index.json.gz"
    assert main(["index", str(dataset_path), str(path), "--k", "8"]) == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.json.gz"])
        assert args.hours == 10.0
        assert args.seed == 2015

    def test_recommend_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "i", "v", "--method", "bogus"])


class TestGenerate:
    def test_creates_file(self, dataset_path):
        assert dataset_path.exists()
        assert dataset_path.stat().st_size > 0

    def test_output_loadable(self, dataset_path):
        from repro.io import load_dataset

        dataset = load_dataset(dataset_path)
        assert dataset.num_videos == 24


class TestIndex:
    def test_creates_index(self, index_path):
        assert index_path.exists()


class TestRecommend:
    def test_recommend_prints_ranked_list(self, index_path, capsys):
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        assert main(["recommend", str(index_path), video, "--top-k", "5"]) == 0
        output = capsys.readouterr().out
        assert "query" in output
        assert output.count(". v") == 5

    def test_unknown_video_fails(self, index_path, capsys):
        assert main(["recommend", str(index_path), "ghost"]) == 2
        assert "unknown video" in capsys.readouterr().err

    @pytest.mark.parametrize("method", ["csf", "cr", "sr", "knn", "affrf"])
    def test_all_methods_run(self, index_path, method, capsys):
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        assert main(["recommend", str(index_path), video, "--method", method, "--top-k", "3"]) == 0


class TestExplain:
    def test_explains_pair(self, index_path, capsys):
        from repro.io import load_index

        ids = load_index(index_path).video_ids
        assert main(["explain", str(index_path), ids[0], ids[1]]) == 0
        output = capsys.readouterr().out
        assert "scored" in output

    def test_unknown_candidate_fails(self, index_path, capsys):
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        assert main(["explain", str(index_path), video, "ghost"]) == 2


class TestIngest:
    def test_retire_and_apply_comments(self, index_path, tmp_path, capsys):
        from repro.io import load_index

        before = load_index(index_path)
        victim = before.video_ids[-1]
        out = tmp_path / "updated.json.gz"
        assert (
            main(
                [
                    "ingest",
                    str(index_path),
                    str(out),
                    "--retire",
                    victim,
                    "--apply-months",
                    "12-15",
                ]
            )
            == 0
        )
        assert "retired 1" in capsys.readouterr().out
        updated = load_index(out)
        assert victim not in updated.video_ids
        assert len(updated.video_ids) == len(before.video_ids) - 1
        assert updated.up_to_month == 15

    def test_add_requires_source_dataset(self, index_path, tmp_path, capsys):
        out = tmp_path / "updated.json.gz"
        assert main(["ingest", str(index_path), str(out), "--add", "v00001"]) == 2
        assert "--add-from" in capsys.readouterr().err

    def test_add_round_trips_video(self, dataset_path, index_path, tmp_path):
        from repro.io import load_index

        # Retire a video, then re-add it from the source dataset.
        first = tmp_path / "without.json.gz"
        second = tmp_path / "with.json.gz"
        victim = load_index(index_path).video_ids[0]
        assert main(["ingest", str(index_path), str(first), "--retire", victim]) == 0
        assert (
            main(
                [
                    "ingest",
                    str(first),
                    str(second),
                    "--add",
                    victim,
                    "--add-from",
                    str(dataset_path),
                ]
            )
            == 0
        )
        restored = load_index(second)
        assert victim in restored.video_ids


class TestTypedErrorExits:
    def test_missing_index_exits_with_one_line(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.json.gz"
        assert main(["recommend", str(missing), "v00001"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_index_for_ingest_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.json.gz"
        out = tmp_path / "out.json.gz"
        assert main(["ingest", str(missing), str(out)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_corrupt_index_exits_with_typed_error(self, index_path, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.json.gz"
        corrupt.write_bytes(index_path.read_bytes()[:200])
        assert main(["recommend", str(corrupt), "v00001"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "snapshot" in err

    def test_missing_snapshot_for_recover_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.json.gz"
        assert (
            main(
                [
                    "recover",
                    str(missing),
                    str(tmp_path / "log.jsonl"),
                    str(tmp_path / "out.json.gz"),
                ]
            )
            == 2
        )
        assert capsys.readouterr().err.startswith("error:")


class TestWalAndRecover:
    def test_ingest_with_wal_then_recover_round_trips(
        self, index_path, tmp_path, capsys
    ):
        from repro.io import load_index

        updated = tmp_path / "updated.json.gz"
        recovered = tmp_path / "recovered.json.gz"
        wal = tmp_path / "log.jsonl"
        victim = load_index(index_path).video_ids[-1]
        assert (
            main(
                [
                    "ingest",
                    str(index_path),
                    str(updated),
                    "--retire",
                    victim,
                    "--apply-months",
                    "12-13",
                    "--wal",
                    str(wal),
                ]
            )
            == 0
        )
        assert "wal seq" in capsys.readouterr().out
        assert wal.exists()
        # Recover from the PRE-ingest snapshot: the WAL alone must carry
        # the session to the exact same state the ingest saved.
        assert main(["recover", str(index_path), str(wal), str(recovered)]) == 0
        assert "replayed" in capsys.readouterr().out
        assert recovered.read_bytes() == updated.read_bytes()

    def test_recover_without_wal_reproduces_snapshot(self, index_path, tmp_path, capsys):
        from repro.io import load_index

        out = tmp_path / "recovered.json.gz"
        absent = tmp_path / "never-written.jsonl"
        assert main(["recover", str(index_path), str(absent), str(out)]) == 0
        assert "replayed 0" in capsys.readouterr().out
        assert load_index(out).video_ids == load_index(index_path).video_ids

    def test_degraded_recommend_prints_note(self, index_path, tmp_path, capsys, monkeypatch):
        from repro.core.stores import SocialStore
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        monkeypatch.setattr(SocialStore, "available", property(lambda self: False))
        assert main(["recommend", str(index_path), video, "--top-k", "3"]) == 0
        captured = capsys.readouterr()
        assert "degraded serving" in captured.err
        assert captured.out.count(". v") == 3


class TestEvaluate:
    def test_reports_table(self, index_path, capsys):
        assert main(["evaluate", str(index_path), "--methods", "cr,sr"]) == 0
        output = capsys.readouterr().out
        assert "CR" in output
        assert "SR" in output
        assert "MAP@20" in output


class TestStats:
    def test_prometheus_output_by_default(self, index_path, capsys):
        assert main(["stats", str(index_path), "--queries", "2"]) == 0
        output = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in output
        assert "# TYPE repro_index_videos gauge" in output
        assert "repro_query_seconds_bucket" in output

    def test_output_parses_back_to_snapshot(self, index_path, capsys):
        from repro.obs import parse_prometheus

        assert main(["stats", str(index_path), "--queries", "1"]) == 0
        snapshot = parse_prometheus(capsys.readouterr().out)
        assert snapshot["counters"]['repro_queries_total{engine="batch"}'] == 1
        assert snapshot["gauges"]["repro_index_videos"] == 24

    def test_json_format(self, index_path, capsys):
        import json

        assert main(["stats", str(index_path), "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "histograms"}

    def test_output_file_written(self, index_path, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        assert main(["stats", str(index_path), "--output", str(out)]) == 0
        capsys.readouterr()
        snapshot = json.loads(out.read_text())
        assert "repro_index_videos" in snapshot["gauges"]

    def test_zero_queries_still_reports_gauges(self, index_path, capsys):
        assert main(["stats", str(index_path), "--queries", "0"]) == 0
        output = capsys.readouterr().out
        assert "repro_index_videos" in output
        assert "repro_queries_total" not in output


class TestTrace:
    def test_trace_flag_prints_span_tree(self, index_path, capsys):
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        assert main(["recommend", str(index_path), video, "--trace"]) == 0
        output = capsys.readouterr().out
        assert "recommend" in output
        for stage in ("candidates", "content_scores", "fuse_topk"):
            assert stage in output
        assert "%" in output

    def test_trace_unsupported_method_notes_and_succeeds(self, index_path, capsys):
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        assert main(
            ["recommend", str(index_path), video, "--method", "knn", "--trace"]
        ) == 0
        captured = capsys.readouterr()
        assert "trace" in captured.err
        assert captured.out.count(". v") > 0


class TestKeyErrorExit:
    def test_unknown_evaluate_method_exits_2(self, index_path, capsys):
        assert main(["evaluate", str(index_path), "--methods", "cr,bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "bogus" in err
        assert len(err.strip().splitlines()) == 1

    def test_escaping_keyerror_maps_to_exit_2(self, index_path, capsys, monkeypatch):
        from repro.core.recommender import FusionRecommender
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]

        def explode(self, *args, **kwargs):
            raise KeyError(f"{video} vanished mid-query")

        monkeypatch.setattr(FusionRecommender, "recommend", explode)
        assert main(["recommend", str(index_path), video]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "vanished mid-query" in err
        assert len(err.strip().splitlines()) == 1


class TestDeadline:
    def test_deadline_partial_exits_zero_with_note(self, index_path, capsys, monkeypatch):
        import repro.core.recommender as recommender_module
        from repro.io import load_index

        # Shrink the budget chunk so even this small index spans several
        # chunks and a tiny deadline genuinely cuts the scan short.
        monkeypatch.setattr(recommender_module, "_BUDGET_CHUNK", 4)
        video = load_index(index_path).video_ids[0]
        assert main(
            ["recommend", str(index_path), video, "--top-k", "3",
             "--deadline-ms", "0.001"]
        ) == 0
        captured = capsys.readouterr()
        assert "partial ranking" in captured.err
        assert "deadline" in captured.err
        assert captured.out.count(". v") == 3

    def test_generous_deadline_prints_no_note(self, index_path, capsys):
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        assert main(
            ["recommend", str(index_path), video, "--deadline-ms", "60000"]
        ) == 0
        assert "partial" not in capsys.readouterr().err

    def test_deadline_unsupported_method_notes_and_succeeds(self, index_path, capsys):
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]
        assert main(
            ["recommend", str(index_path), video, "--method", "knn",
             "--deadline-ms", "5", "--top-k", "3"]
        ) == 0
        captured = capsys.readouterr()
        assert "deadline-ms" in captured.err
        assert captured.out.count(". v") == 3


class TestFaults:
    def test_list_prints_every_registered_point(self, capsys):
        assert main(["faults", "--list"]) == 0
        output = capsys.readouterr().out
        for point in (
            "wal.before_append",
            "wal.torn_append",
            "wal.before_fsync",
            "wal.after_append",
            "snapshot.before_write",
            "snapshot.torn_write",
            "snapshot.before_replace",
            "snapshot.after_replace",
            "serve.social_scores",
            "serve.publish_epoch",
        ):
            assert point in output, point
        assert "InjectedCrashError" in output
        assert "InjectedFaultError" in output
        assert "OverloadedError" in output

    def test_without_list_exits_2(self, capsys):
        assert main(["faults"]) == 2
        assert "faults --list" in capsys.readouterr().err


class TestServeSoak:
    def test_short_soak_reports_ok(self, tmp_path, capsys):
        out = tmp_path / "soak.json"
        assert main(
            ["serve-soak", "--queries", "160", "--writers", "2",
             "--readers", "4", "--seed", "7", "--output", str(out)]
        ) == 0
        captured = capsys.readouterr().out
        assert "soak ok" in captured
        assert "oracle parity" in captured
        import json

        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["parity_failures"] == []


class TestOverloadExit:
    def test_overloaded_error_maps_to_typed_exit_2(self, index_path, capsys, monkeypatch):
        from repro.core.recommender import FusionRecommender
        from repro.errors import OverloadedError
        from repro.io import load_index

        video = load_index(index_path).video_ids[0]

        def shed(self, *args, **kwargs):
            raise OverloadedError("admission queue full")

        monkeypatch.setattr(FusionRecommender, "recommend", shed)
        assert main(["recommend", str(index_path), video]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "admission queue full" in err
        assert len(err.strip().splitlines()) == 1
