"""Tests for the index-backed K-top-score video search (Fig. 6)."""

import pytest

from repro.core.knn import KTopScoreVideoSearch
from repro.core.pipeline import CommunityIndex
from repro.core.config import RecommenderConfig
from repro.core.recommender import csf_sar_h_recommender


class TestConstruction:
    def test_requires_lsb_index(self, workload):
        slim = CommunityIndex(
            workload.dataset, RecommenderConfig(k=8),
            build_lsb=False, build_global_features=False,
        )
        with pytest.raises(ValueError, match="LSB"):
            KTopScoreVideoSearch(slim)

    def test_omega_defaults_to_config(self, index):
        assert KTopScoreVideoSearch(index).omega == pytest.approx(index.config.omega)

    def test_invalid_omega(self, index):
        with pytest.raises(ValueError, match="omega"):
            KTopScoreVideoSearch(index, omega=-1.0)


class TestSearch:
    def test_returns_k_results(self, workload, index):
        search = KTopScoreVideoSearch(index)
        results = search.search(workload.sources[0], top_k=5)
        assert len(results) == 5

    def test_results_sorted_by_score(self, workload, index):
        search = KTopScoreVideoSearch(index)
        results = search.search(workload.sources[0], top_k=8)
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_never_returns_the_query(self, workload, index):
        search = KTopScoreVideoSearch(index)
        for source in workload.sources[:3]:
            assert all(r.video_id != source for r in search.search(source, 10))

    def test_components_recorded(self, workload, index):
        result = KTopScoreVideoSearch(index).search(workload.sources[0], 3)[0]
        assert 0.0 <= result.content <= 1.0
        assert 0.0 <= result.social <= 1.0

    def test_unknown_query_rejected(self, index):
        with pytest.raises(KeyError, match="unknown video"):
            KTopScoreVideoSearch(index).search("ghost", 5)

    def test_invalid_top_k(self, workload, index):
        with pytest.raises(ValueError, match="top_k"):
            KTopScoreVideoSearch(index).search(workload.sources[0], 0)

    def test_recall_against_exhaustive_scan(self, workload, index):
        """The index-backed search should substantially agree with the
        exhaustive SAR-H scan at the same fusion weight."""
        search = KTopScoreVideoSearch(index)
        exhaustive = csf_sar_h_recommender(index)
        agreements = []
        for source in workload.sources:
            fast = set(search.recommend(source, 10))
            full = set(exhaustive.recommend(source, 10))
            agreements.append(len(fast & full) / 10)
        assert sum(agreements) / len(agreements) >= 0.6

    def test_recommend_wrapper_returns_ids(self, workload, index):
        search = KTopScoreVideoSearch(index)
        ids = search.recommend(workload.sources[0], 4)
        assert len(ids) == 4
        assert all(isinstance(video_id, str) for video_id in ids)
