"""Unit tests for the VideoClip container."""

import numpy as np
import pytest

from repro.video.clip import VideoClip


def make_clip(**overrides):
    defaults = dict(
        video_id="clip",
        frames=np.zeros((5, 4, 4), dtype=np.float32),
        fps=10.0,
    )
    defaults.update(overrides)
    return VideoClip(**defaults)


class TestConstruction:
    def test_basic_properties(self):
        clip = make_clip()
        assert clip.num_frames == 5
        assert clip.frame_shape == (4, 4)
        assert clip.duration_seconds == pytest.approx(0.5)
        assert len(clip) == 5

    def test_frames_clipped_to_intensity_range(self):
        clip = make_clip(frames=np.full((2, 3, 3), 400.0))
        assert clip.frames.max() <= 255.0

    def test_rejects_2d_frames(self):
        with pytest.raises(ValueError, match="volume"):
            make_clip(frames=np.zeros((4, 4)))

    def test_rejects_empty_clip(self):
        with pytest.raises(ValueError, match="at least one frame"):
            make_clip(frames=np.zeros((0, 4, 4)))

    def test_rejects_nonpositive_fps(self):
        with pytest.raises(ValueError, match="fps"):
            make_clip(fps=0.0)

    def test_frames_converted_to_float32(self):
        clip = make_clip(frames=np.zeros((2, 2, 2), dtype=np.float64))
        assert clip.frames.dtype == np.float32


class TestLineage:
    def test_master_is_not_derived(self):
        clip = make_clip()
        assert not clip.is_derived()
        assert clip.root_id() == "clip"

    def test_variant_roots_to_master(self):
        clip = make_clip(lineage="master7")
        assert clip.is_derived()
        assert clip.root_id() == "master7"


class TestFrameAccess:
    def test_frame_indexing(self):
        frames = np.stack([np.full((2, 2), i, dtype=np.float32) for i in range(4)])
        clip = make_clip(frames=frames)
        assert clip.frame(2)[0, 0] == 2.0
        assert clip.frame(-1)[0, 0] == 3.0
