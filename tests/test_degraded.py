"""Tests for degraded-mode serving: social outages, staleness, time budgets."""

import pytest

from repro.community import CommunityConfig, generate_community
from repro.core import (
    FusionRecommender,
    LiveCommunityIndex,
    Recommendations,
    RecommenderConfig,
    social_recommender,
)
from repro.errors import SocialStoreUnavailableError


@pytest.fixture(scope="module")
def dataset():
    return generate_community(CommunityConfig(hours=2.0, seed=33))


@pytest.fixture()
def live(dataset):
    return LiveCommunityIndex(dataset, RecommenderConfig(k=8))


@pytest.fixture()
def query(live):
    return live.video_ids[0]


class TestSocialOutage:
    def test_healthy_serving_is_not_flagged(self, live, query):
        results = FusionRecommender(live, omega=0.7).recommend(query, 8)
        assert isinstance(results, Recommendations)
        assert not results.degraded and not results.partial
        assert results.reasons == ()
        assert results.scored == results.total == len(live.video_ids) - 1

    def test_outage_serves_content_only(self, live, query):
        content_only = FusionRecommender(live, omega=0.0).recommend(query, 8)
        live.social_store.mark_unavailable("uig shard lost")
        degraded = FusionRecommender(live, omega=0.7, social_mode="sar-h").recommend(
            query, 8
        )
        assert degraded.degraded
        assert "uig shard lost" in degraded.reasons[0]
        assert list(degraded) == list(content_only)

    def test_outage_degrades_pure_social_too(self, live, query):
        live.social_store.mark_unavailable()
        results = social_recommender(live).recommend(query, 8)
        assert results.degraded
        assert len(results) == 8

    def test_component_scores_still_raises(self, live, query):
        live.social_store.mark_unavailable("maintenance")
        recommender = FusionRecommender(live, omega=0.7)
        with pytest.raises(SocialStoreUnavailableError, match="maintenance"):
            recommender.component_scores(query)

    def test_store_guards_mutations_when_unavailable(self, live, query):
        live.social_store.mark_unavailable()
        with pytest.raises(SocialStoreUnavailableError):
            live.social_store.apply_comments([("user", query)])

    def test_recovery_restores_full_service(self, live, query):
        recommender = FusionRecommender(live, omega=0.7, social_mode="sar-h")
        healthy = recommender.recommend(query, 8)
        live.social_store.mark_unavailable("blip")
        assert recommender.recommend(query, 8).degraded
        live.social_store.mark_available()
        restored = recommender.recommend(query, 8)
        assert not restored.degraded
        assert list(restored) == list(healthy)

    def test_content_only_recommender_ignores_outage(self, live, query):
        live.social_store.mark_unavailable()
        results = FusionRecommender(live, omega=0.0).recommend(query, 8)
        assert not results.degraded


class TestStaleness:
    def test_within_bound_serves_fused(self, live, query):
        live.social_store.record_skipped_mutations(2)
        results = FusionRecommender(
            live, omega=0.7, max_social_staleness=5
        ).recommend(query, 8)
        assert not results.degraded

    def test_beyond_bound_degrades(self, live, query):
        live.social_store.record_skipped_mutations(6)
        content_only = FusionRecommender(live, omega=0.0).recommend(query, 8)
        results = FusionRecommender(
            live, omega=0.7, max_social_staleness=5
        ).recommend(query, 8)
        assert results.degraded
        assert "stale" in results.reasons[0]
        assert list(results) == list(content_only)

    def test_no_bound_never_degrades_on_staleness(self, live, query):
        live.social_store.record_skipped_mutations(1000)
        results = FusionRecommender(live, omega=0.7).recommend(query, 8)
        assert not results.degraded

    def test_bound_from_config(self, dataset, query):
        live = LiveCommunityIndex(
            dataset, RecommenderConfig(k=8, max_social_staleness=0)
        )
        live.social_store.record_skipped_mutations(1)
        assert FusionRecommender(live, omega=0.7).recommend(query, 8).degraded

    def test_negative_bound_rejected(self, live):
        with pytest.raises(ValueError, match="max_social_staleness"):
            FusionRecommender(live, max_social_staleness=-1)
        with pytest.raises(ValueError, match="max_social_staleness"):
            RecommenderConfig(max_social_staleness=-1)


class TestTimeBudget:
    def test_generous_budget_matches_unbudgeted(self, live, query):
        unbudgeted = FusionRecommender(live, omega=0.7, social_mode="sar-h").recommend(
            query, 8
        )
        for engine in ("batch", "scalar"):
            budgeted = FusionRecommender(
                live, omega=0.7, social_mode="sar-h", engine=engine, time_budget=120.0
            ).recommend(query, 8)
            assert list(budgeted) == list(unbudgeted)
            assert not budgeted.partial

    def test_tiny_budget_returns_flagged_partial_prefix(self, dataset):
        # > one scoring chunk of candidates, so the deadline can cut the scan.
        big = generate_community(CommunityConfig(hours=4.0, seed=11))
        live = LiveCommunityIndex(big, RecommenderConfig(k=8))
        query = live.video_ids[0]
        results = FusionRecommender(
            live, omega=0.7, social_mode="sar-h", time_budget=1e-9
        ).recommend(query, 4)
        assert results.partial and results.degraded
        assert 1 <= results.scored < results.total
        assert "time budget" in results.reasons[-1]
        assert len(results) == 4  # still a usable ranking

    def test_budget_from_config(self, dataset, query):
        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8, time_budget=120.0))
        results = FusionRecommender(live, omega=0.7).recommend(query, 8)
        assert not results.partial
        assert results.scored == results.total

    def test_non_positive_budget_rejected(self, live):
        with pytest.raises(ValueError, match="time_budget"):
            FusionRecommender(live, time_budget=0.0)
        with pytest.raises(ValueError, match="time_budget"):
            RecommenderConfig(time_budget=-1.0)


class TestRecommendationsType:
    def test_compares_equal_to_plain_list(self, live, query):
        results = FusionRecommender(live, omega=0.7).recommend(query, 5)
        assert results == list(results)
        assert isinstance(results, list)

    def test_carries_flags(self):
        results = Recommendations(
            ["a", "b"], degraded=True, partial=True, reasons=["why"], scored=2, total=9
        )
        assert results == ["a", "b"]
        assert results.degraded and results.partial
        assert results.reasons == ("why",)
        assert (results.scored, results.total) == (2, 9)


class TestSlicing:
    """Slices and copies must not silently drop serving metadata."""

    def test_degraded_slice_keeps_flags_and_reasons(self, live, query):
        live.social_store.mark_unavailable("uig shard lost")
        results = FusionRecommender(live, omega=0.7).recommend(query, 8)
        top = results[:5]
        assert isinstance(top, Recommendations)
        assert top == list(results)[:5]
        assert top.degraded is True
        assert top.reasons == results.reasons
        assert "uig shard lost" in top.reasons[0]
        assert (top.scored, top.total) == (results.scored, results.total)

    def test_partial_slice_keeps_flags(self):
        big = generate_community(CommunityConfig(hours=4.0, seed=11))
        live = LiveCommunityIndex(big, RecommenderConfig(k=8))
        results = FusionRecommender(
            live, omega=0.7, social_mode="sar-h", time_budget=1e-9
        ).recommend(live.video_ids[0], 5)
        assert results.partial
        sliced = results[:3]
        assert sliced.partial is True
        assert sliced.scored == results.scored

    def test_every_slice_shape_preserves_metadata(self):
        results = Recommendations(
            list("abcdef"), degraded=True, partial=True,
            reasons=["why"], scored=4, total=9,
        )
        for sliced in (results[1:4], results[::2], results[::-1], results[:]):
            assert isinstance(sliced, Recommendations)
            assert sliced.degraded and sliced.partial
            assert sliced.reasons == ("why",)
            assert (sliced.scored, sliced.total) == (4, 9)

    def test_copy_preserves_metadata_and_detaches(self):
        results = Recommendations(["a", "b"], degraded=True, reasons=["r"], total=5)
        duplicate = results.copy()
        assert isinstance(duplicate, Recommendations)
        assert duplicate == results
        assert duplicate.degraded and duplicate.reasons == ("r",)
        duplicate.append("c")
        assert results == ["a", "b"]

    def test_integer_index_returns_plain_item(self, live, query):
        results = FusionRecommender(live, omega=0.7).recommend(query, 5)
        assert isinstance(results[0], str)
        assert results[0] == list(results)[0]
