"""EpochManager lifecycle: retire-on-drain ordering around publishes.

The invariants the serving layers (single-index gateway and sharded
epoch vector alike) lean on:

* publishing retires a **drained** predecessor immediately, and a
  still-pinned one not at all — until its last reader unpins, at which
  point it retires **exactly once**;
* the current epoch never retires, no matter how often its reader count
  touches zero;
* ``pin_specific`` pins any live epoch and refuses a retired one — the
  seam the sharded gateway's vector-pin retry loop is built on.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.community.models import CommunityDataset
from repro.core import CommunityIndex, RecommenderConfig
from repro.core.stores import ContentStore, SocialStore
from repro.serving.epoch import EpochManager
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor


def _tiny_index(num_videos: int = 5, seed: int = 3) -> CommunityIndex:
    rng = np.random.default_rng(seed)
    config = RecommenderConfig(k=4)
    content = ContentStore(config, build_lsb=False, build_global_features=False)
    descriptors = {}
    for i in range(num_videos):
        video_id = f"v{i:03d}"
        signatures = tuple(
            CuboidSignature(
                values=rng.normal(0.0, 4.0, 5), weights=rng.random(5) + 0.1
            )
            for _ in range(2)
        )
        content.add_series(
            video_id, SignatureSeries(video_id=video_id, signatures=signatures)
        )
        descriptors[video_id] = SocialDescriptor.from_users(
            video_id, [f"u{j}" for j in rng.choice(8, size=3, replace=False)]
        )
    social = SocialStore(descriptors, k=config.k)
    dataset = CommunityDataset(records={}, users={}, comments=[], topics=())
    return CommunityIndex._from_parts(dataset, config, content, social)


@pytest.fixture()
def index():
    return _tiny_index()


@pytest.fixture()
def manager():
    return EpochManager()


class TestPublishRetireOrdering:
    def test_drained_predecessor_retires_at_publish(self, manager, index):
        first = manager.publish(index)
        second = manager.publish(index)
        assert first.retired and not second.retired
        assert manager.retired_total == 1
        assert manager.live_count == 1
        assert manager.current is second

    def test_pinned_predecessor_survives_publish(self, manager, index):
        first = manager.publish(index)
        pinned = manager.pin()
        assert pinned is first
        manager.publish(index)
        assert not first.retired  # a reader still holds it
        assert manager.live_count == 2

    def test_last_unpin_after_publish_retires_exactly_once(self, manager, index):
        first = manager.publish(index)
        manager.pin()
        manager.pin()  # two concurrent readers of the same epoch
        manager.publish(index)
        manager.unpin(first)
        assert not first.retired  # one reader still draining
        assert manager.retired_total == 0
        manager.unpin(first)
        assert first.retired  # drained now: retired...
        assert manager.retired_total == 1  # ...exactly once
        assert manager.live_count == 1

    def test_current_epoch_never_retires_on_drain(self, manager, index):
        epoch = manager.publish(index)
        for _ in range(3):
            manager.pin()
            manager.unpin(epoch)
        assert not epoch.retired
        assert manager.retired_total == 0

    def test_pin_after_publish_gets_new_epoch(self, manager, index):
        first = manager.publish(index)
        held = manager.pin()
        second = manager.publish(index)
        fresh = manager.pin()
        assert held is first and fresh is second
        manager.unpin(fresh)
        manager.unpin(held)
        assert first.retired and not second.retired

    def test_prepare_runs_before_visibility(self, manager, index):
        observed = []

        def prepare(epoch):
            # The pointer must not have swapped yet: a reader pinning
            # "now" still gets the previous epoch (None on the first
            # publish).
            observed.append(manager.current)
            epoch.prepared = True

        epoch = manager.publish(index, prepare=prepare)
        assert observed == [None]
        assert manager.pin().prepared
        manager.unpin(epoch)


class TestPinSpecific:
    def test_pins_current_and_superseded_live_epochs(self, manager, index):
        first = manager.publish(index)
        assert manager.pin_specific(first)  # current
        manager.publish(index)
        assert manager.pin_specific(first)  # superseded but live
        manager.unpin(first)
        manager.unpin(first)
        assert first.retired

    def test_refuses_retired_epoch(self, manager, index):
        first = manager.publish(index)
        manager.publish(index)  # retires the drained first
        assert first.retired
        assert not manager.pin_specific(first)
        assert first.readers == 0  # refusal must not leak a pin

    def test_vector_pin_protocol(self, manager, index):
        """The sharded gateway's swap: pin new, swap, unpin old."""
        first = manager.publish(index)
        assert manager.pin_specific(first)  # the "vector pin"
        second = manager.publish(index)
        assert not first.retired  # vector still holds it
        assert manager.pin_specific(second)  # pin new
        manager.unpin(first)  # then release old
        assert first.retired and not second.retired
        manager.unpin(second)
        assert not second.retired  # still current


class TestConcurrentDrain:
    def test_racing_readers_retire_each_superseded_epoch_once(self, index):
        manager = EpochManager()
        manager.publish(index)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    epoch = manager.pin()
                    epoch.video_ids[0]  # touch frozen state
                    manager.unpin(epoch)
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        publishes = 25
        for _ in range(publishes):
            manager.publish(index)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        # Every superseded epoch retires exactly once: current is the
        # only survivor once readers drain.
        assert manager.published_total == publishes + 1
        assert manager.retired_total == publishes
        assert manager.live_count == 1
