"""Tests for the simulated judge panel."""

import pytest

from repro.evaluation.judges import JudgePanel


@pytest.fixture(scope="module")
def panel(workload):
    return JudgePanel(workload.dataset, seed=5)


def grade_examples(dataset):
    """One (query, candidate) pair per relevance grade."""
    records = dataset.records
    examples = {}
    for query_id, query in records.items():
        for candidate_id, candidate in records.items():
            if candidate_id == query_id:
                continue
            grade = dataset.relevance_grade(query_id, candidate_id)
            examples.setdefault(grade, (query_id, candidate_id))
        if len(examples) == 3:
            break
    return examples


class TestRatings:
    def test_ratings_in_range(self, workload, panel):
        sources = workload.sources[:2]
        for source in sources:
            for video_id in list(workload.dataset.records)[:10]:
                assert 1.0 <= panel.rate(source, video_id) <= 5.0

    def test_ratings_deterministic_across_calls(self, workload, panel):
        source = workload.sources[0]
        video_id = next(iter(workload.dataset.records))
        assert panel.rate(source, video_id) == panel.rate(source, video_id)

    def test_ratings_deterministic_across_panels(self, workload):
        first = JudgePanel(workload.dataset, seed=5)
        second = JudgePanel(workload.dataset, seed=5)
        source = workload.sources[0]
        video_id = sorted(workload.dataset.records)[3]
        assert first.rate(source, video_id) == second.rate(source, video_id)

    def test_panel_seed_changes_ratings(self, workload):
        first = JudgePanel(workload.dataset, seed=5)
        second = JudgePanel(workload.dataset, seed=6)
        source = workload.sources[0]
        video_ids = sorted(workload.dataset.records)[:10]
        assert any(
            first.rate(source, v) != second.rate(source, v) for v in video_ids
        )

    def test_grade_ordering_respected(self, workload, panel):
        examples = grade_examples(workload.dataset)
        if len(examples) == 3:
            near_dup = panel.rate(*examples[2])
            same_topic = panel.rate(*examples[1])
            unrelated = panel.rate(*examples[0])
            assert near_dup > unrelated
            assert same_topic > unrelated

    def test_rate_list_matches_individual_calls(self, workload, panel):
        source = workload.sources[0]
        video_ids = sorted(workload.dataset.records)[:5]
        assert panel.rate_list(source, video_ids) == [
            panel.rate(source, v) for v in video_ids
        ]

    def test_invalid_panel_size(self, workload):
        with pytest.raises(ValueError, match="at least one judge"):
            JudgePanel(workload.dataset, num_judges=0)
