"""Tests for the streaming near-duplicate monitor."""

import numpy as np
import pytest

from repro.signatures import extract_signature_series
from repro.streaming import DuplicateAlert, ReferenceCatalogue, StreamMonitor
from repro.video import derive_variant, synthesize_clip


@pytest.fixture(scope="module")
def reference_clip():
    return synthesize_clip(
        "reference", topic=1, rng=np.random.default_rng(100),
        num_shots=4, frames_per_shot=(10, 14),
    )


@pytest.fixture(scope="module")
def catalogue(reference_clip):
    catalogue = ReferenceCatalogue()
    catalogue.add(extract_signature_series(reference_clip))
    other = synthesize_clip(
        "other", topic=2, rng=np.random.default_rng(200),
        num_shots=4, frames_per_shot=(10, 14),
    )
    catalogue.add(extract_signature_series(other))
    return catalogue


def stream_clip(monitor, clip):
    alerts = []
    for frame in clip.frames:
        alerts.extend(monitor.push(frame))
    alerts.extend(monitor.finish())
    return alerts


class TestReferenceCatalogue:
    def test_membership_and_sizes(self, catalogue, reference_clip):
        assert "reference" in catalogue
        assert len(catalogue) == 2
        assert catalogue.size_of("reference") >= 1

    def test_duplicate_reference_rejected(self, catalogue, reference_clip):
        with pytest.raises(ValueError, match="already indexed"):
            catalogue.add(extract_signature_series(reference_clip))


class TestStreamMonitor:
    def test_detects_replayed_reference(self, catalogue, reference_clip):
        monitor = StreamMonitor(catalogue)
        alerts = stream_clip(monitor, reference_clip)
        assert any(alert.reference_id == "reference" for alert in alerts)

    def test_detects_photometric_variant(self, catalogue, reference_clip):
        from repro.video.transforms import adjust_brightness

        variant = derive_variant(
            reference_clip, "variant", np.random.default_rng(7),
            chain=[adjust_brightness],
        )
        monitor = StreamMonitor(catalogue)
        alerts = stream_clip(monitor, variant)
        assert any(alert.reference_id == "reference" for alert in alerts)

    def test_unrelated_stream_stays_quiet(self, catalogue):
        unrelated = synthesize_clip(
            "unrelated", topic=5, rng=np.random.default_rng(300),
            num_shots=4, frames_per_shot=(10, 14),
        )
        monitor = StreamMonitor(catalogue)
        alerts = stream_clip(monitor, unrelated)
        assert alerts == []

    def test_alerts_fire_once_per_reference(self, catalogue, reference_clip):
        monitor = StreamMonitor(catalogue)
        alerts = stream_clip(monitor, reference_clip)
        alerts += stream_clip(monitor, reference_clip)  # replay again
        fired = [a.reference_id for a in alerts if a.reference_id == "reference"]
        assert len(fired) == 1

    def test_frames_seen_counts_pushes(self, catalogue, reference_clip):
        monitor = StreamMonitor(catalogue)
        stream_clip(monitor, reference_clip)
        assert monitor.frames_seen == reference_clip.num_frames

    def test_evidence_accumulates(self, catalogue, reference_clip):
        monitor = StreamMonitor(catalogue, alert_evidence=99.0)
        stream_clip(monitor, reference_clip)
        evidence = monitor.evidence()
        assert evidence.get("reference", 0.0) > evidence.get("other", 0.0)

    def test_short_stream_no_crash(self, catalogue):
        monitor = StreamMonitor(catalogue)
        assert monitor.push(np.zeros((32, 32), dtype=np.float32)) == []
        assert monitor.finish() == []

    def test_parameter_validation(self, catalogue):
        with pytest.raises(ValueError, match="max_segment_frames"):
            StreamMonitor(catalogue, max_segment_frames=1)
        with pytest.raises(ValueError, match="min_similarity"):
            StreamMonitor(catalogue, min_similarity=0.0)
        with pytest.raises(ValueError, match="alert_evidence"):
            StreamMonitor(catalogue, alert_evidence=0.0)

    def test_alert_payload(self, catalogue, reference_clip):
        monitor = StreamMonitor(catalogue)
        alerts = stream_clip(monitor, reference_clip)
        alert = next(a for a in alerts if a.reference_id == "reference")
        assert isinstance(alert, DuplicateAlert)
        assert alert.matched_segments >= 1
        assert alert.score >= 2.0
        assert 0 < alert.frame_position <= reference_clip.num_frames
