"""Serving gateway: epoch isolation, deadlines, shedding, circuit breaker.

Single-threaded behavioural tests of every gateway mechanism (the
multi-threaded torture lives in ``test_chaos_soak.py``): copy-on-write
epoch publication and the pin/retire lifecycle, request deadlines cutting
the chunked scan into partial results, typed load shedding, the breaker's
trip -> open -> half-open -> close cycle under an injected clock, and
retry/backoff of transient social faults.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import FusionRecommender, LiveCommunityIndex
from repro.errors import OverloadedError, ServingError
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    GatewayConfig,
    ServingGateway,
)
from repro.serving.gateway import SERVE_PUBLISH_POINT, SERVE_SOCIAL_POINT
from repro.testing.faults import FaultPlan, InjectedFaultError


def _leaves(dataset):
    parents = {r.lineage for r in dataset.records.values() if r.lineage}
    return sorted(v for v in dataset.records if v not in parents)


@pytest.fixture(scope="module")
def spare_ids(workload):
    """Two leaf videos held out of the live index (always ingestable)."""
    return _leaves(workload.dataset)[:2]


@pytest.fixture(scope="module")
def live(workload, config, spare_ids):
    """A live index over all but the spare videos.

    46 indexed videos puts every query's candidate count above the
    32-candidate budget chunk, so deadline tests can actually go partial.
    """
    dataset = workload.dataset
    initial = sorted(set(dataset.records) - set(spare_ids))
    live = LiveCommunityIndex(dataset.subset(initial), config)
    live.dataset.comments = list(dataset.comments)
    return live


@pytest.fixture()
def gateway(live):
    return ServingGateway(live)


@pytest.fixture(scope="module")
def query(live):
    return live.video_ids[0]


# ----------------------------------------------------------------------
# Epoch lifecycle
# ----------------------------------------------------------------------
class TestEpochs:
    def test_initial_epoch_serves_master_parity(self, gateway, live, query):
        served = gateway.recommend(query, top_k=8)
        with FusionRecommender(live) as direct:
            assert list(served) == list(direct.recommend(query, top_k=8))
        assert served.epoch_id == 0
        assert served.omega_served == live.config.omega

    def test_mutation_publishes_new_epoch(self, gateway, live, workload, query, spare_ids):
        spare = spare_ids[0]
        before = gateway.recommend(query, top_k=8)
        gateway.ingest_video(workload.dataset.records[spare])
        try:
            after = gateway.recommend(query, top_k=8)
            assert after.epoch_id == before.epoch_id + 1
            assert spare in gateway.current_epoch.video_ids
            # The old epoch is frozen: the pinned view never saw the ingest.
            assert spare not in before.epoch.video_ids
        finally:
            gateway.retire_video(spare)

    def test_epoch_view_is_frozen_under_comments(self, gateway, live, query):
        before = gateway.recommend(query, top_k=8)
        frozen = before.epoch.descriptor(query)
        gateway.apply_comments([("user_freeze_probe", query)])
        assert before.epoch.descriptor(query) is frozen
        assert "user_freeze_probe" in gateway.current_epoch.descriptor(query).users
        assert "user_freeze_probe" not in frozen.users

    def test_superseded_epoch_retires_when_drained(self, gateway, live, query):
        manager = gateway.epochs
        pinned = manager.pin()
        gateway.advance_watermark(live.up_to_month)  # cheap mutation
        assert manager.live_count == 2  # pinned old + current
        assert not pinned.retired
        manager.unpin(pinned)
        assert pinned.retired
        assert manager.live_count == 1

    def test_unpinned_superseded_epoch_retires_at_publish(self, gateway, live):
        retired_before = gateway.epochs.retired_total
        gateway.advance_watermark(live.up_to_month)
        assert gateway.epochs.retired_total == retired_before + 1
        assert gateway.epochs.live_count == 1

    def test_publish_fault_keeps_serving_old_epoch(self, gateway, live, query):
        plan = FaultPlan()
        gw = ServingGateway(live, faults=plan)
        first = gw.recommend(query, top_k=4)
        plan.arm_failures(SERVE_PUBLISH_POINT, 1)
        with pytest.raises(InjectedFaultError):
            gw.advance_watermark(live.up_to_month)
        # Publication failed but serving continues from the old epoch.
        again = gw.recommend(query, top_k=4)
        assert again.epoch_id == first.epoch_id
        gw.advance_watermark(live.up_to_month)
        assert gw.recommend(query, top_k=4).epoch_id == first.epoch_id + 1


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_tight_deadline_returns_partial_prefix(self, gateway, query):
        result = gateway.recommend(query, top_k=8, deadline=1e-7)
        assert result.partial
        assert result.degraded
        assert 0 < result.scored < result.total
        assert any("deadline" in reason for reason in result.reasons)

    def test_partial_matches_prefix_oracle(self, gateway, query):
        result = gateway.recommend(query, top_k=8, deadline=1e-7)
        epoch = result.epoch
        oracle = epoch.recommender(omega=result.omega_served)
        candidates = [vid for vid in epoch.video_ids if vid != query]
        content, social = oracle._score_arrays(
            query, candidates[: result.scored], result.omega_served
        )
        from repro.core.recommender import rank_components

        components = {
            vid: (float(c), float(s))
            for vid, c, s in zip(candidates, content, social)
        }
        assert list(result) == rank_components(components, result.omega_served, 8)

    def test_default_deadline_from_config(self, live, query):
        gw = ServingGateway(live, config=GatewayConfig(default_deadline=1e-7))
        assert gw.recommend(query, top_k=8).partial

    def test_generous_deadline_scores_everything(self, gateway, query):
        result = gateway.recommend(query, top_k=8, deadline=30.0)
        assert not result.partial
        assert result.scored == result.total


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def _saturate(self, gw, query):
        """Wedge one query inside the gateway; returns (thread, release)."""
        entered, hold = threading.Event(), threading.Event()
        original = gw._social_path

        def wedged(*args, **kwargs):
            entered.set()
            hold.wait(5.0)
            return original(*args, **kwargs)

        gw._social_path = wedged
        thread = threading.Thread(target=lambda: gw.recommend(query))
        thread.start()
        assert entered.wait(5.0)
        return thread, hold

    def test_full_queue_sheds_typed_error(self, live, query):
        gw = ServingGateway(
            live,
            config=GatewayConfig(max_concurrency=1, queue_depth=0, queue_timeout=0.01),
        )
        thread, hold = self._saturate(gw, query)
        try:
            with pytest.raises(OverloadedError):
                gw.recommend(query)
        finally:
            hold.set()
            thread.join()
        # OverloadedError is a ServingError, which the CLI maps to exit 2.
        assert issubclass(OverloadedError, ServingError)

    def test_queued_request_admitted_after_release(self, live, query):
        gw = ServingGateway(
            live,
            config=GatewayConfig(max_concurrency=1, queue_depth=4, queue_timeout=5.0),
        )
        thread, hold = self._saturate(gw, query)
        results = []
        queued = threading.Thread(
            target=lambda: results.append(gw.recommend(query, top_k=4))
        )
        queued.start()
        hold.set()
        thread.join()
        queued.join(5.0)
        assert len(results) == 1 and len(results[0]) == 4

    def test_queue_timeout_sheds(self, live, query):
        gw = ServingGateway(
            live,
            config=GatewayConfig(max_concurrency=1, queue_depth=4, queue_timeout=0.01),
        )
        thread, hold = self._saturate(gw, query)
        try:
            with pytest.raises(OverloadedError):
                gw.recommend(query)
        finally:
            hold.set()
            thread.join()

    def test_shed_carries_retry_after_hint(self, live, query):
        gw = ServingGateway(
            live,
            config=GatewayConfig(max_concurrency=1, queue_depth=0, queue_timeout=0.01),
        )
        thread, hold = self._saturate(gw, query)
        try:
            with pytest.raises(OverloadedError) as info:
                gw.recommend(query)
        finally:
            hold.set()
            thread.join()
        assert info.value.retry_after_ms is not None
        assert info.value.retry_after_ms >= 1.0


class TestRetryAfterHint:
    """Regression pins of the EWMA-derived ``retry_after_ms`` arithmetic."""

    def _gate(self, max_concurrency=2, queue_depth=4):
        from repro.serving.gateway import _AdmissionGate

        return _AdmissionGate(max_concurrency, queue_depth, queue_timeout=1.0)

    def test_default_service_time_before_any_query(self):
        # backlog=1, avg=DEFAULT_SERVICE_TIME=0.05s, concurrency 2:
        # 1000 * 0.05 * 1 / 2 = 25 ms.
        assert self._gate().retry_after_ms() == pytest.approx(25.0)

    def test_ewma_folds_service_times(self):
        gate = self._gate()
        gate.record_service_time(0.1)
        assert gate.retry_after_ms() == pytest.approx(1000.0 * 0.1 / 2)
        # alpha=0.2: 0.1 + 0.2 * (0.2 - 0.1) = 0.12
        gate.record_service_time(0.2)
        assert gate.retry_after_ms() == pytest.approx(1000.0 * 0.12 / 2)

    def test_hint_scales_with_backlog(self):
        from repro.obs import get_metrics

        gate = self._gate(max_concurrency=1, queue_depth=0)
        gate.record_service_time(0.04)
        gate.admit(None, get_metrics())  # takes the only slot
        try:
            with pytest.raises(OverloadedError) as info:
                gate.admit(None, get_metrics())
        finally:
            gate.release(get_metrics())
        # backlog = (1-1) + 0 waiting + 1 = 1 -> 1000 * 0.04 * 1 / 1.
        assert info.value.retry_after_ms == pytest.approx(40.0)

    def test_hint_floor_is_one_millisecond(self):
        gate = self._gate(max_concurrency=8)
        gate.record_service_time(0.000001)
        assert gate.retry_after_ms() == 1.0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestBreaker:
    def test_state_machine_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3,
            cooldown=10.0,
            half_open_successes=2,
            clock=lambda: clock[0],
        )
        assert breaker.state == CLOSED
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CLOSED  # below threshold
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN  # tripped
        assert not breaker.allow()  # cooldown not elapsed
        clock[0] = 10.0
        assert breaker.allow()  # first probe admitted
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # probe budget of 1 exhausted
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # needs 2 consecutive successes
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_probe_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=5.0, clock=lambda: clock[0]
        )
        breaker.allow()
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown restarted at t=5
        clock[0] = 9.9
        assert not breaker.allow()
        clock[0] = 10.0
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # the streak never reached 2

    def test_gateway_trips_and_recovers(self, live, query):
        clock = [0.0]
        plan = FaultPlan()
        gw = ServingGateway(
            live,
            config=GatewayConfig(
                breaker_failure_threshold=2, breaker_cooldown=10.0, retry_attempts=0
            ),
            faults=plan,
            breaker_clock=lambda: clock[0],
        )
        plan.arm_failures(SERVE_SOCIAL_POINT, -1)
        for _ in range(2):
            result = gw.recommend(query, top_k=4)
            assert result.degraded and result.omega_served == 0.0
        assert gw.breaker.state == OPEN
        # While open the social point isn't even attempted.
        fired_while_open = len(plan.fired)
        short_circuited = gw.recommend(query, top_k=4)
        assert short_circuited.degraded
        assert len(plan.fired) == fired_while_open
        assert any("circuit breaker open" in r for r in short_circuited.reasons)
        # Dependency recovers; after the cooldown a probe closes the breaker.
        plan.arm_failures(SERVE_SOCIAL_POINT, 0)
        clock[0] = 10.0
        healthy = gw.recommend(query, top_k=4)
        assert not healthy.degraded
        assert healthy.omega_served == live.config.omega
        assert gw.breaker.state == CLOSED
        assert gw.breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_degraded_ranking_matches_content_only_oracle(self, live, query):
        plan = FaultPlan()
        gw = ServingGateway(
            live,
            config=GatewayConfig(breaker_failure_threshold=1, retry_attempts=0),
            faults=plan,
        )
        plan.arm_failures(SERVE_SOCIAL_POINT, -1)
        degraded = gw.recommend(query, top_k=8)
        with FusionRecommender(live, omega=0.0) as oracle:
            assert list(degraded) == list(oracle.recommend(query, top_k=8))


# ----------------------------------------------------------------------
# Retry / backoff
# ----------------------------------------------------------------------
class TestRetry:
    def test_transient_fault_retried_to_success(self, live, query):
        plan = FaultPlan()
        gw = ServingGateway(
            live,
            config=GatewayConfig(retry_attempts=2, retry_backoff=1e-4),
            faults=plan,
        )
        plan.arm_failures(SERVE_SOCIAL_POINT, 2)  # flaps twice, then recovers
        result = gw.recommend(query, top_k=4)
        assert not result.degraded
        assert gw.breaker.state == CLOSED
        assert plan.fired.count(SERVE_SOCIAL_POINT) == 3

    def test_exhausted_retries_degrade_and_count_failure(self, live, query):
        plan = FaultPlan()
        gw = ServingGateway(
            live,
            config=GatewayConfig(
                retry_attempts=1, retry_backoff=1e-4, breaker_failure_threshold=1
            ),
            faults=plan,
        )
        plan.arm_failures(SERVE_SOCIAL_POINT, -1)
        result = gw.recommend(query, top_k=4)
        assert result.degraded
        assert gw.breaker.state == OPEN
        assert plan.fired.count(SERVE_SOCIAL_POINT) == 2  # initial + 1 retry


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrency": 0},
            {"queue_depth": -1},
            {"queue_timeout": -0.1},
            {"default_deadline": 0.0},
            {"retry_attempts": -1},
        ],
    )
    def test_gateway_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            GatewayConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown": -1.0},
            {"half_open_probes": 0},
            {"half_open_successes": 0},
        ],
    )
    def test_breaker_rejects(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


# ----------------------------------------------------------------------
# Batched mutations (one epoch per block)
# ----------------------------------------------------------------------
class TestBatchedMutations:
    def test_block_publishes_once_at_exit(self, live, workload, spare_ids):
        gateway = ServingGateway(live)
        before = gateway.epochs.published_total
        frozen = gateway.current_epoch
        try:
            with gateway.mutations():
                for vid in spare_ids:
                    gateway.ingest_video(workload.dataset.records[vid])
                gateway.apply_comments(
                    [("u_batch", live.video_ids[0])]
                )
                # Mid-block, readers still serve the pre-block epoch.
                assert gateway.current_epoch is frozen
            assert gateway.epochs.published_total == before + 1
            assert gateway.current_epoch is not frozen
            for vid in spare_ids:
                assert vid in gateway.current_epoch.series
        finally:
            with gateway.mutations():
                for vid in spare_ids:
                    gateway.retire_video(vid)

    def test_blocks_nest_and_publish_at_outermost_exit(
        self, live, workload, spare_ids
    ):
        gateway = ServingGateway(live)
        before = gateway.epochs.published_total
        try:
            with gateway.mutations():
                gateway.ingest_video(workload.dataset.records[spare_ids[0]])
                with gateway.mutations():
                    gateway.ingest_video(workload.dataset.records[spare_ids[1]])
                assert gateway.epochs.published_total == before  # still held
            assert gateway.epochs.published_total == before + 1
        finally:
            with gateway.mutations():
                for vid in spare_ids:
                    gateway.retire_video(vid)

    def test_publish_happens_even_on_exception(self, live, workload, spare_ids):
        gateway = ServingGateway(live)
        before = gateway.epochs.published_total
        with pytest.raises(RuntimeError, match="boom"):
            with gateway.mutations():
                gateway.ingest_video(workload.dataset.records[spare_ids[0]])
                raise RuntimeError("boom")
        # The ingest already applied to the master, so the deferred
        # publish must still land — otherwise readers never see it.
        assert gateway.epochs.published_total == before + 1
        assert spare_ids[0] in gateway.current_epoch.series
        gateway.retire_video(spare_ids[0])

    def test_block_without_mutations_publishes_nothing(self, live):
        gateway = ServingGateway(live)
        before = gateway.epochs.published_total
        with gateway.mutations():
            pass
        assert gateway.epochs.published_total == before


# ----------------------------------------------------------------------
# Memo invalidation accounting
# ----------------------------------------------------------------------
class TestMemoInvalidateCounter:
    def test_publication_counts_dropped_entries(self, live, query):
        from repro.obs.metrics import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = ServingGateway(
                live, config=GatewayConfig(default_deadline=None)
            )
            queries = list(live.video_ids)[:3]
            for q in queries:
                gateway.recommend(q, 5)  # three resident memo entries
            gateway.apply_comments([("u_inval", query)])
            counters = registry.snapshot()["counters"]
            assert counters.get("repro_serving_memo_invalidate_total", 0) == 3
            # An empty memo invalidation adds nothing to the counter.
            gateway.apply_comments([("u_inval2", query)])
            counters = registry.snapshot()["counters"]
            assert counters.get("repro_serving_memo_invalidate_total", 0) == 3

    def test_ledger_reconciles(self, live):
        """puts == invalidated + evicted + resident (no lost entries)."""
        from repro.obs.metrics import MetricsRegistry, use_metrics
        from repro.serving.gateway import _QueryMemo

        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = ServingGateway(
                live, config=GatewayConfig(default_deadline=None, memo_capacity=2)
            )
            queries = list(live.video_ids)[:4]
            for q in queries:
                gateway.recommend(q, 5)  # 4 puts, capacity 2 -> 2 evictions
            gateway.advance_watermark(live.up_to_month)  # drops the rest
            counters = registry.snapshot()["counters"]
            assert counters.get("repro_serving_memo_evict_total", 0) == 2
            assert counters.get("repro_serving_memo_invalidate_total", 0) == 2
            assert isinstance(gateway._memo, _QueryMemo)
            assert len(gateway._memo) == 0
