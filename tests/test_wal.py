"""Tests for the write-ahead log: format, torn tails, replay, recovery."""

import json

import pytest

from repro.community import CommunityConfig, generate_community
from repro.core import LiveCommunityIndex, RecommenderConfig, csf_sar_h_recommender
from repro.errors import WalCorruptionError
from repro.io import WriteAheadLog, read_wal, recover, save_index


@pytest.fixture(scope="module")
def dataset():
    return generate_community(CommunityConfig(hours=2.0, seed=33))


@pytest.fixture()
def live(dataset):
    return LiveCommunityIndex(dataset, RecommenderConfig(k=8))


class TestAppendAndScan:
    def test_roundtrip_preserves_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append("retire", {"video_id": "v1"})
            wal.append("watermark", {"month": 13})
        scan = read_wal(path)
        assert [(r.seq, r.op) for r in scan.records] == [(1, "retire"), (2, "watermark")]
        assert scan.records[0].payload == {"video_id": "v1"}
        assert not scan.torn_tail

    def test_sequence_numbers_are_contiguous_from_one(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with WriteAheadLog(path) as wal:
            assert [wal.append("retire", {"video_id": f"v{i}"}) for i in range(5)] == [
                1, 2, 3, 4, 5,
            ]

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append("retire", {"video_id": "v1"})
        with WriteAheadLog(path) as wal:
            assert wal.append("retire", {"video_id": "v2"}) == 2
        assert [r.seq for r in read_wal(path).records] == [1, 2]

    def test_missing_log(self, tmp_path):
        path = tmp_path / "absent.jsonl"
        with pytest.raises(FileNotFoundError):
            read_wal(path)
        scan = read_wal(path, missing_ok=True)
        assert scan.records == [] and not scan.torn_tail

    def test_every_line_carries_a_crc(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append("retire", {"video_id": "v1"})
        entry = json.loads(path.read_text().splitlines()[0])
        assert set(entry) == {"crc", "op", "payload", "seq"}


class TestTornAndCorrupt:
    def _write_two(self, path):
        with WriteAheadLog(path) as wal:
            wal.append("retire", {"video_id": "v1"})
            wal.append("watermark", {"month": 13})

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_two(path)
        with open(path, "ab") as handle:
            handle.write(b'{"crc": 0, "op": "retir')  # append cut mid-line
        scan = read_wal(path)
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.torn_tail

    def test_bad_crc_in_tail_is_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_two(path)
        raw = path.read_bytes()
        # Flip a payload byte of the LAST record: its CRC no longer matches.
        path.write_bytes(raw[:-4] + bytes([raw[-4] ^ 0xFF]) + raw[-3:])
        scan = read_wal(path)
        assert [r.seq for r in scan.records] == [1]
        assert scan.torn_tail

    def test_mid_log_corruption_refused(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_two(path)
        lines = path.read_bytes().splitlines(keepends=True)
        damaged = lines[0][:10] + b"X" + lines[0][11:]
        path.write_bytes(damaged + lines[1])
        with pytest.raises(WalCorruptionError, match="not a torn tail"):
            read_wal(path)

    def test_reopen_physically_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_two(path)
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"garbage with no newline")
        with WriteAheadLog(path) as wal:
            assert wal.seq == 2
        assert path.stat().st_size == intact
        assert not read_wal(path).torn_tail


class TestRecovery:
    def _mutate(self, index):
        victim = index.video_ids[-1]
        target = index.video_ids[0]
        index.retire_video(victim)
        index.apply_comments([("late_user_a", target), ("late_user_b", target)])
        index.advance_watermark(13)

    def test_recover_replays_to_identical_recommendations(self, live, tmp_path):
        snapshot = tmp_path / "snap.json.gz"
        wal_path = tmp_path / "log.jsonl"
        save_index(live, snapshot)
        with WriteAheadLog(wal_path) as wal:
            live.attach_wal(wal)
            self._mutate(live)
        recovered = recover(snapshot, wal_path)
        assert recovered.recovery.replayed == 3
        assert recovered.recovery.skipped == 0
        query = live.video_ids[0]
        assert (
            csf_sar_h_recommender(recovered).recommend(query, 8)
            == csf_sar_h_recommender(live).recommend(query, 8)
        )
        assert recovered.up_to_month == live.up_to_month

    def test_checkpoint_watermark_skips_replayed_prefix(self, live, tmp_path):
        snapshot = tmp_path / "snap.json.gz"
        wal_path = tmp_path / "log.jsonl"
        save_index(live, snapshot)
        with WriteAheadLog(wal_path) as wal:
            live.attach_wal(wal)
            self._mutate(live)
        # Checkpoint after the mutations: recovery must not re-apply them.
        save_index(live, snapshot)
        recovered = recover(snapshot, wal_path)
        assert recovered.recovery.replayed == 0
        assert recovered.recovery.skipped == 3
        query = live.video_ids[0]
        assert (
            csf_sar_h_recommender(recovered).recommend(query, 8)
            == csf_sar_h_recommender(live).recommend(query, 8)
        )

    def test_ingest_replay_needs_no_reextraction(self, dataset, tmp_path):
        # Hold one video out, snapshot, then ingest it under the WAL: the
        # logged series/features/members must reproduce it exactly.
        held_out = sorted(dataset.records)[-1]
        initial = sorted(set(dataset.records) - {held_out})
        live = LiveCommunityIndex(dataset.subset(initial), RecommenderConfig(k=8))
        live.dataset.comments = list(dataset.comments)
        snapshot = tmp_path / "snap.json.gz"
        wal_path = tmp_path / "log.jsonl"
        save_index(live, snapshot)
        with WriteAheadLog(wal_path) as wal:
            live.attach_wal(wal)
            live.ingest_video(dataset.records[held_out])
        recovered = recover(snapshot, wal_path)
        assert held_out in recovered.video_ids
        assert recovered.descriptor(held_out).users == live.descriptor(held_out).users
        query = live.video_ids[0]
        assert (
            csf_sar_h_recommender(recovered).recommend(query, 8)
            == csf_sar_h_recommender(live).recommend(query, 8)
        )

    def test_recover_without_wal_is_the_snapshot(self, live, tmp_path):
        snapshot = tmp_path / "snap.json.gz"
        save_index(live, snapshot)
        recovered = recover(snapshot, tmp_path / "never-written.jsonl")
        assert recovered.recovery.replayed == 0
        assert recovered.video_ids == live.video_ids

    def test_recovered_checkpoint_is_byte_identical(self, live, tmp_path):
        snapshot = tmp_path / "snap.json.gz"
        wal_path = tmp_path / "log.jsonl"
        save_index(live, snapshot)
        with WriteAheadLog(wal_path) as wal:
            live.attach_wal(wal)
            self._mutate(live)
        live.detach_wal()
        uninterrupted = tmp_path / "uninterrupted.json.gz"
        save_index(live, uninterrupted)
        recovered_path = tmp_path / "recovered.json.gz"
        save_index(recover(snapshot, wal_path), recovered_path)
        assert recovered_path.read_bytes() == uninterrupted.read_bytes()
