"""Tests for RecommenderConfig and the fusion functions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import RecommenderConfig
from repro.core.fusion import fuse_average, fuse_fj, fuse_max

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestConfig:
    def test_paper_defaults(self):
        config = RecommenderConfig()
        assert config.omega == pytest.approx(0.7)
        assert config.k == 60
        assert config.q == 2

    def test_invalid_omega(self):
        with pytest.raises(ValueError, match="omega"):
            RecommenderConfig(omega=1.5)

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            RecommenderConfig(k=0)

    def test_invalid_q(self):
        with pytest.raises(ValueError, match="q must be"):
            RecommenderConfig(q=1)

    def test_invalid_embedding_range(self):
        with pytest.raises(ValueError, match="embedding range"):
            RecommenderConfig(embedding_range=(3.0, 3.0))

    def test_with_omega_copies(self):
        config = RecommenderConfig()
        changed = config.with_omega(0.2)
        assert changed.omega == pytest.approx(0.2)
        assert config.omega == pytest.approx(0.7)
        assert changed.k == config.k

    def test_with_k_copies(self):
        changed = RecommenderConfig().with_k(33)
        assert changed.k == 33


class TestFuseFj:
    def test_omega_zero_is_pure_content(self):
        assert fuse_fj(0.8, 0.1, omega=0.0) == pytest.approx(0.8)

    def test_omega_one_is_pure_social(self):
        assert fuse_fj(0.8, 0.1, omega=1.0) == pytest.approx(0.1)

    def test_weighted_blend(self):
        assert fuse_fj(1.0, 0.0, omega=0.7) == pytest.approx(0.3)

    def test_invalid_omega(self):
        with pytest.raises(ValueError, match="omega"):
            fuse_fj(0.5, 0.5, omega=-0.1)

    def test_invalid_relevance(self):
        with pytest.raises(ValueError, match="content relevance"):
            fuse_fj(1.5, 0.5, omega=0.5)
        with pytest.raises(ValueError, match="social relevance"):
            fuse_fj(0.5, -0.1, omega=0.5)

    @given(unit, unit, unit)
    def test_result_bounded_and_monotone(self, content, social, omega):
        value = fuse_fj(content, social, omega)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert min(content, social) - 1e-9 <= value <= max(content, social) + 1e-9


class TestAlternativeFusions:
    def test_average(self):
        assert fuse_average(0.2, 0.8) == pytest.approx(0.5)

    def test_max(self):
        assert fuse_max(0.2, 0.8) == pytest.approx(0.8)

    @given(unit, unit)
    def test_average_equals_fj_half(self, content, social):
        assert fuse_average(content, social) == pytest.approx(
            fuse_fj(content, social, omega=0.5)
        )
