"""Tests for the spectral-clustering baseline and k-means."""

import networkx as nx
import numpy as np
import pytest

from repro.social.spectral import kmeans, spectral_partition


class TestKmeans:
    def test_separates_obvious_clusters(self, rng):
        points = np.concatenate([
            rng.normal(0.0, 0.1, size=(20, 2)),
            rng.normal(5.0, 0.1, size=(20, 2)),
        ])
        labels = kmeans(points, 2, rng)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[-1]

    def test_k_one_gives_single_cluster(self, rng):
        points = rng.normal(size=(10, 3))
        assert set(kmeans(points, 1, rng)) == {0}

    def test_k_equal_n(self, rng):
        points = rng.normal(size=(5, 2)) * 10
        labels = kmeans(points, 5, rng)
        assert len(set(labels)) == 5

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError, match="k must be"):
            kmeans(np.zeros((3, 2)), 4, rng)


def two_cliques(weight_internal=5, weight_bridge=1):
    graph = nx.Graph()
    for group, members in enumerate((["a", "b", "c", "d"], ["x", "y", "z", "w"])):
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v, weight=weight_internal)
    graph.add_edge("d", "x", weight=weight_bridge)
    return graph


class TestSpectralPartition:
    def test_recovers_two_cliques(self):
        partition = spectral_partition(two_cliques(), 2, seed=1)
        assert partition.k == 2
        assert partition.community_of("a") == partition.community_of("d")
        assert partition.community_of("x") == partition.community_of("z")
        assert partition.community_of("a") != partition.community_of("x")

    def test_k_clamped_to_node_count(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=1)
        partition = spectral_partition(graph, 10, seed=0)
        assert partition.k <= 2

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            spectral_partition(nx.Graph(), 2)

    def test_deterministic_for_fixed_seed(self):
        first = spectral_partition(two_cliques(), 2, seed=3)
        second = spectral_partition(two_cliques(), 2, seed=3)
        assert first.membership == second.membership

    def test_handles_isolated_nodes(self):
        graph = two_cliques()
        graph.add_node("loner")
        partition = spectral_partition(graph, 3, seed=0)
        assert "loner" in partition.membership
