"""Tests for the B+-tree, including model-based property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.bptree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.get(5) == []

    def test_insert_and_get(self):
        tree = BPlusTree(order=4)
        tree.insert(10, "a")
        assert tree.get(10) == ["a"]
        assert len(tree) == 1

    def test_duplicate_keys_all_retrievable(self):
        tree = BPlusTree(order=3)
        for i in range(10):
            tree.insert(5, i)
        assert sorted(tree.get(5)) == list(range(10))

    def test_order_below_three_rejected(self):
        with pytest.raises(ValueError, match="order"):
            BPlusTree(order=2)

    def test_depth_grows_with_inserts(self):
        tree = BPlusTree(order=3)
        assert tree.depth() == 1
        for i in range(50):
            tree.insert(i, i)
        assert tree.depth() >= 3


class TestOrderedAccess:
    def test_items_sorted(self):
        rng = np.random.default_rng(0)
        keys = [int(k) for k in rng.integers(0, 10_000, size=300)]
        tree = BPlusTree(order=8)
        for key in keys:
            tree.insert(key, None)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_range_query(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 3):
            tree.insert(key, key)
        result = [k for k, _ in tree.range(10, 30)]
        assert result == [k for k in range(0, 100, 3) if 10 <= k <= 30]

    def test_empty_range(self):
        tree = BPlusTree()
        tree.insert(5, "x")
        assert list(tree.range(10, 3)) == []

    def test_seek_positions_at_first_geq(self):
        tree = BPlusTree(order=3)
        for key in (2, 4, 6, 8, 10, 12):
            tree.insert(key, key)
        leaf, index = tree.seek(7)
        assert leaf.keys[index] == 8
        leaf, index = tree.seek(8)
        assert leaf.keys[index] == 8


class TestNeighbourhood:
    def test_orders_by_distance(self):
        tree = BPlusTree(order=4)
        for key in (0, 10, 20, 30, 40, 50):
            tree.insert(key, key)
        walked = [k for k, _ in tree.neighbourhood(22)]
        gaps = [abs(k - 22) for k in walked]
        assert gaps == sorted(gaps)
        assert len(walked) == 6

    def test_query_beyond_max_walks_backwards(self):
        tree = BPlusTree(order=4)
        for key in (1, 2, 3):
            tree.insert(key, key)
        assert [k for k, _ in tree.neighbourhood(100)] == [3, 2, 1]

    def test_query_before_min_walks_forwards(self):
        tree = BPlusTree(order=4)
        for key in (5, 6, 7):
            tree.insert(key, key)
        assert [k for k, _ in tree.neighbourhood(0)] == [5, 6, 7]

    def test_empty_tree_neighbourhood(self):
        assert list(BPlusTree().neighbourhood(3)) == []


class TestModelBased:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=120),
           st.integers(min_value=3, max_value=16))
    def test_matches_sorted_list_model(self, keys, order):
        tree = BPlusTree(order=order)
        for position, key in enumerate(keys):
            tree.insert(key, position)
        assert len(tree) == len(keys)
        assert [k for k, _ in tree.items()] == sorted(keys)
        # Every key's payload multiset matches the model.
        for key in set(keys):
            expected = [p for p, k in enumerate(keys) if k == key]
            assert sorted(tree.get(key)) == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=80),
           st.integers(min_value=0, max_value=100))
    def test_neighbourhood_visits_everything_in_distance_order(self, keys, probe):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, None)
        walked = [k for k, _ in tree.neighbourhood(probe)]
        assert sorted(walked) == sorted(keys)
        gaps = [abs(k - probe) for k in walked]
        assert gaps == sorted(gaps)
