"""Tests for the Silhouette Coefficient over UIG partitions."""

import networkx as nx
import numpy as np
import pytest

from repro.social.silhouette import (
    partition_silhouette,
    silhouette_coefficient,
    uig_distance_matrix,
)
from repro.social.subcommunity import Partition


class TestDistanceMatrix:
    def test_diagonal_zero_and_nonadjacent_one(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=2)
        graph.add_node("c")
        matrix, nodes = uig_distance_matrix(graph)
        index = {node: i for i, node in enumerate(nodes)}
        assert matrix[index["a"], index["a"]] == 0.0
        assert matrix[index["a"], index["c"]] == 1.0

    def test_heavier_edges_are_closer(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=4)
        graph.add_edge("b", "c", weight=1)
        matrix, nodes = uig_distance_matrix(graph)
        index = {node: i for i, node in enumerate(nodes)}
        assert matrix[index["a"], index["b"]] < matrix[index["b"], index["c"]]

    def test_max_weight_edge_has_zero_distance(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=3)
        matrix, nodes = uig_distance_matrix(graph)
        assert matrix[0, 1] == pytest.approx(0.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            uig_distance_matrix(nx.Graph())


class TestSilhouetteCoefficient:
    def test_perfect_separation_scores_high(self):
        distances = np.ones((4, 4))
        np.fill_diagonal(distances, 0.0)
        distances[0, 1] = distances[1, 0] = 0.05
        distances[2, 3] = distances[3, 2] = 0.05
        labels = np.array([0, 0, 1, 1])
        assert silhouette_coefficient(labels, distances) > 0.9

    def test_bad_clustering_scores_lower_than_good(self):
        distances = np.ones((4, 4))
        np.fill_diagonal(distances, 0.0)
        distances[0, 1] = distances[1, 0] = 0.05
        distances[2, 3] = distances[3, 2] = 0.05
        good = silhouette_coefficient(np.array([0, 0, 1, 1]), distances)
        bad = silhouette_coefficient(np.array([0, 1, 0, 1]), distances)
        assert good > bad

    def test_singletons_contribute_zero(self):
        distances = np.ones((3, 3))
        np.fill_diagonal(distances, 0.0)
        labels = np.array([0, 1, 2])
        assert silhouette_coefficient(labels, distances) == 0.0

    def test_single_cluster_rejected(self):
        with pytest.raises(ValueError, match="two clusters"):
            silhouette_coefficient(np.zeros(3, dtype=int), np.zeros((3, 3)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            silhouette_coefficient(np.array([0, 1]), np.zeros((3, 3)))

    def test_bounded_in_minus_one_one(self, rng):
        n = 10
        raw = rng.uniform(0.1, 1.0, size=(n, n))
        distances = (raw + raw.T) / 2
        np.fill_diagonal(distances, 0.0)
        labels = rng.integers(0, 3, size=n)
        if len(set(labels.tolist())) >= 2:
            value = silhouette_coefficient(labels, distances)
            assert -1.0 <= value <= 1.0


class TestPartitionSilhouette:
    def test_natural_partition_beats_random(self):
        graph = nx.Graph()
        for base in ("a", "b"):
            members = [f"{base}{i}" for i in range(4)]
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    graph.add_edge(u, v, weight=5)
        graph.add_edge("a0", "b0", weight=1)
        natural = Partition([
            {f"a{i}" for i in range(4)},
            {f"b{i}" for i in range(4)},
        ])
        mixed = Partition([
            {"a0", "a1", "b0", "b1"},
            {"a2", "a3", "b2", "b3"},
        ])
        assert partition_silhouette(graph, natural) > partition_silhouette(graph, mixed)
