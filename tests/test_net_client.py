"""Retrying client: backoff schedule, Retry-After, budget, idempotency.

Every test runs against a scripted fake transport (``_once`` overridden)
with an injected sleep recorder — no server, no sockets, no real
sleeping — so the exact backoff arithmetic is pinned, not approximated.
"""

from __future__ import annotations

import http.client

import pytest

from repro.errors import NetClientError
from repro.net.client import NetResponse, RetryingClient, RetryPolicy


def _response(status, headers=None, body=b"{}"):
    return NetResponse(status, headers or {}, body)


class ScriptedClient(RetryingClient):
    """A client whose transport plays back a script of outcomes.

    Script entries are :class:`NetResponse` instances or exceptions (an
    exception entry is raised).  The script repeats its last entry when
    exhausted.  Sleeps are recorded, never slept.
    """

    def __init__(self, script, policy=None, **kwargs):
        self.script = list(script)
        self.calls = []
        self.sleeps = []
        super().__init__(
            "http://127.0.0.1:1",
            policy or RetryPolicy(),
            sleep=self.sleeps.append,
            **kwargs,
        )

    def _once(self, method, path, body, headers):
        self.calls.append((method, path))
        outcome = self.script.pop(0) if len(self.script) > 1 else self.script[0]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestRetries:
    def test_success_first_try(self):
        client = ScriptedClient([_response(200)])
        assert client.request("GET", "/healthz").status == 200
        assert client.calls == [("GET", "/healthz")]
        assert client.sleeps == []
        assert client.stats == {"requests": 1, "retries": 0, "failures": 0}

    def test_429_retried_then_succeeds(self):
        client = ScriptedClient([_response(429), _response(200)])
        assert client.request("GET", "/x").status == 200
        assert len(client.calls) == 2
        assert client.stats["retries"] == 1

    def test_exponential_schedule_pinned(self):
        policy = RetryPolicy(attempts=4, backoff=0.05, multiplier=2.0, jitter=0.0)
        client = ScriptedClient([_response(503)] * 3 + [_response(200)], policy)
        assert client.request("GET", "/x").status == 200
        assert client.sleeps == [0.05, 0.1, 0.2]

    def test_max_backoff_caps_delay(self):
        policy = RetryPolicy(
            attempts=5, backoff=1.0, multiplier=10.0, max_backoff=1.5, jitter=0.0
        )
        client = ScriptedClient([_response(503)] * 4 + [_response(200)], policy)
        client.request("GET", "/x")
        assert client.sleeps == [1.0, 1.5, 1.5, 1.5]

    def test_jitter_stretches_but_never_shrinks(self):
        policy = RetryPolicy(attempts=2, backoff=0.1, jitter=0.5)
        client = ScriptedClient([_response(503), _response(200)], policy, seed=7)
        client.request("GET", "/x")
        (delay,) = client.sleeps
        assert 0.1 <= delay <= 0.15

    def test_server_hint_overrides_smaller_backoff(self):
        policy = RetryPolicy(attempts=2, backoff=0.05, jitter=0.0)
        hinted = _response(429, {"X-Retry-After-Ms": "700"})
        client = ScriptedClient([hinted, _response(200)], policy)
        client.request("GET", "/x")
        assert client.sleeps == [0.7]

    def test_coarse_retry_after_header_used(self):
        policy = RetryPolicy(attempts=2, backoff=0.05, jitter=0.0)
        hinted = _response(503, {"Retry-After": "2"})
        client = ScriptedClient([hinted, _response(200)], policy)
        client.request("GET", "/x")
        assert client.sleeps == [2.0]

    def test_exhaustion_raises_typed_error_with_status(self):
        policy = RetryPolicy(attempts=3, jitter=0.0)
        client = ScriptedClient([_response(503)], policy)
        with pytest.raises(NetClientError) as info:
            client.request("GET", "/x")
        assert info.value.status == 503
        assert len(client.calls) == 3
        assert client.stats["failures"] == 1

    def test_non_retryable_status_returned_verbatim(self):
        client = ScriptedClient([_response(404)])
        assert client.request("GET", "/x").status == 404
        assert len(client.calls) == 1


class TestIdempotency:
    def test_connection_error_retried_for_get(self):
        client = ScriptedClient([ConnectionRefusedError("refused"), _response(200)])
        assert client.request("GET", "/x").status == 200
        assert len(client.calls) == 2

    def test_connection_error_not_retried_for_post(self):
        client = ScriptedClient([ConnectionRefusedError("refused"), _response(200)])
        with pytest.raises(NetClientError) as info:
            client.request("POST", "/interaction", body=b"{}")
        assert info.value.status is None
        assert len(client.calls) == 1  # the POST may have landed server-side

    def test_post_with_idempotent_flag_is_retried(self):
        client = ScriptedClient([ConnectionRefusedError("refused"), _response(200)])
        response = client.request(
            "POST", "/interaction", body=b"{}", idempotent=True
        )
        assert response.status == 200
        assert len(client.calls) == 2

    def test_truncated_body_counts_as_connection_error(self):
        # The chaos abort surfaces as IncompleteRead against Content-Length.
        error = http.client.IncompleteRead(b"half")
        client = ScriptedClient([error, _response(200)])
        assert client.request("GET", "/x").status == 200

    def test_interaction_helper_mints_unique_ids_and_retries(self):
        client = ScriptedClient(
            [ConnectionRefusedError("refused"), _response(200)],
            client_id="c1",
        )
        assert client.interaction("u1", "v1").status == 200
        assert len(client.calls) == 2  # retried: the minted id deduplicates
        # Ids are unique per logical interaction, not per attempt.
        client.script = [_response(200)]
        client.interaction("u1", "v1")
        assert client.client_id == "c1"


class TestBudget:
    def test_budget_exhaustion_stops_retrying(self):
        policy = RetryPolicy(attempts=3, jitter=0.0, budget=1.0, budget_refund=0.0)
        client = ScriptedClient([_response(503)], policy)
        with pytest.raises(NetClientError):
            client.request("GET", "/x")
        assert len(client.calls) == 2  # 1 try + the single budgeted retry
        with pytest.raises(NetClientError):
            client.request("GET", "/x")
        assert len(client.calls) == 3  # no tokens left: fail fast
        assert client.retry_budget == 0.0

    def test_successes_refund_budget(self):
        policy = RetryPolicy(attempts=2, jitter=0.0, budget=1.0, budget_refund=0.5)
        client = ScriptedClient([_response(503), _response(200)], policy)
        client.request("GET", "/x")
        assert client.retry_budget == 0.5
        client.script = [_response(200)]
        client.request("GET", "/x")
        assert client.retry_budget == 1.0  # capped at the initial pool


class TestNetResponse:
    def test_json_and_case_insensitive_headers(self):
        response = NetResponse(200, {"X-Cache": "hit"}, b'{"ok":true}')
        assert response.json() == {"ok": True}
        assert response.header("x-cache") == "hit"
        assert response.header("missing") is None

    def test_retry_after_ms_prefers_precise_header(self):
        both = NetResponse(429, {"Retry-After": "3", "X-Retry-After-Ms": "123"}, b"")
        assert both.retry_after_ms == 123.0
        coarse = NetResponse(429, {"Retry-After": "3"}, b"")
        assert coarse.retry_after_ms == 3000.0
        assert NetResponse(200, {}, b"").retry_after_ms is None
