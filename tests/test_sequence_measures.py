"""Tests for the ERP and DTW sequence measures (Fig. 7 baselines)."""

import numpy as np
import pytest

from repro.measures.sequence import dtw_distance, dtw_similarity, erp_distance, erp_similarity
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries


def sig(value):
    return CuboidSignature(values=np.array([float(value)]), weights=np.array([1.0]))


def series(*values):
    return SignatureSeries("s", tuple(sig(v) for v in values))


class TestErp:
    def test_identical_series_distance_zero(self):
        s = series(1.0, -2.0, 3.0)
        assert erp_distance(s, s) == pytest.approx(0.0)

    def test_gap_penalty_is_distance_to_zero(self):
        long = series(5.0, 7.0)
        short = series(5.0)
        # Aligning 7 against a gap costs |7 - 0| = 7.
        assert erp_distance(long, short) == pytest.approx(7.0)

    def test_symmetry(self):
        s1 = series(1.0, 2.0, 3.0)
        s2 = series(2.0, 4.0)
        assert erp_distance(s1, s2) == pytest.approx(erp_distance(s2, s1))

    def test_triangle_inequality_examples(self):
        s1, s2, s3 = series(0.0, 1.0), series(2.0), series(5.0, 5.0)
        assert erp_distance(s1, s3) <= erp_distance(s1, s2) + erp_distance(s2, s3) + 1e-9

    def test_similarity_in_unit_interval(self):
        assert 0.0 < erp_similarity(series(0.0), series(50.0)) <= 1.0

    def test_sensitive_to_reordering(self):
        """The property that loses Fig. 7 for ERP: reordering hurts it."""
        original = series(0.0, 10.0, 20.0, 30.0)
        reordered = series(20.0, 30.0, 0.0, 10.0)
        assert erp_distance(original, reordered) > 0.0


class TestDtw:
    def test_identical_series_distance_zero(self):
        s = series(1.0, 5.0)
        assert dtw_distance(s, s) == pytest.approx(0.0)

    def test_warping_absorbs_repeats(self):
        s1 = series(3.0, 7.0)
        s2 = series(3.0, 3.0, 3.0, 7.0)  # stuttered start
        assert dtw_distance(s1, s2, normalize=False) == pytest.approx(0.0)

    def test_normalisation_divides_by_total_length(self):
        s1 = series(0.0)
        s2 = series(4.0)
        assert dtw_distance(s1, s2, normalize=False) == pytest.approx(4.0)
        assert dtw_distance(s1, s2, normalize=True) == pytest.approx(2.0)

    def test_symmetry(self):
        s1 = series(1.0, 2.0)
        s2 = series(0.0, 5.0, 6.0)
        assert dtw_distance(s1, s2) == pytest.approx(dtw_distance(s2, s1))

    def test_similarity_monotone_in_distance(self):
        near = dtw_similarity(series(0.0), series(1.0))
        far = dtw_similarity(series(0.0), series(30.0))
        assert near > far

    def test_sensitive_to_reordering(self):
        original = series(0.0, 10.0, 20.0, 30.0)
        reordered = series(30.0, 20.0, 10.0, 0.0)
        assert dtw_distance(original, reordered) > 0.0
