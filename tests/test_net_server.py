"""HTTP front-end: routing, cache, rate limit, interactions, drain, chaos.

Most tests exercise :class:`RecommendService.handle` directly — the
transport-independent core — against a real live index; the deadline/
degraded status mappings use a stub gateway (a tiny index finishes its
scan before any real deadline can expire).  The final class goes through
real sockets: :class:`ReproHTTPServer` + :class:`RetryingClient`,
including fault injection, mid-response aborts and graceful drain.
"""

from __future__ import annotations

import json

import pytest

from repro.core import LiveCommunityIndex
from repro.errors import NetClientError, OverloadedError
from repro.net import (
    ChaosSchedule,
    InteractionLog,
    NetConfig,
    RecommendService,
    ReproHTTPServer,
    RetryingClient,
    RetryPolicy,
    TokenBucketLimiter,
    read_interactions,
)
from repro.net.server import NET_REQUEST_POINT, NET_RESPONSE_POINT
from repro.serving import ServingGateway
from repro.testing.faults import FaultPlan


@pytest.fixture(scope="module")
def live(workload, config):
    dataset = workload.dataset
    live = LiveCommunityIndex(dataset.subset(sorted(dataset.records)), config)
    live.dataset.comments = list(dataset.comments)
    return live


@pytest.fixture()
def service(live, tmp_path):
    gateway = ServingGateway(live)
    return RecommendService(
        gateway, InteractionLog(tmp_path / "interactions.wal")
    )


def body_of(payload: bytes) -> dict:
    return json.loads(payload.decode("utf-8"))


def make_service(live, tmp_path, config=None, clock=None, name="log.wal"):
    kwargs = {} if clock is None else {"clock": clock}
    return RecommendService(
        ServingGateway(live),
        InteractionLog(tmp_path / name),
        config,
        **kwargs,
    )


class TestRouting:
    def test_healthz_always_200(self, service):
        status, _, payload = service.handle("GET", "/healthz")
        assert status == 200
        assert body_of(payload) == {"status": "ok"}
        service.begin_drain()
        assert service.handle("GET", "/healthz")[0] == 200

    def test_readyz_reports_epoch_and_goes_red_on_drain(self, service):
        status, _, payload = service.handle("GET", "/readyz")
        assert status == 200
        body = body_of(payload)
        assert body["status"] == "ready"
        assert body["applied_seq"] == 0
        service.begin_drain()
        status, _, payload = service.handle("GET", "/readyz")
        assert status == 503
        assert body_of(payload)["status"] == "draining"

    def test_recommend_happy_path(self, service, live):
        video = live.video_ids[0]
        status, extra, payload = service.handle(
            "GET", f"/recommend/{video}", {"top_k": "5"}
        )
        assert status == 200
        assert extra["X-Cache"] == "miss"
        body = body_of(payload)
        assert body["query"] == video
        assert 0 < len(body["recommendations"]) <= 5
        assert all(
            set(r) == {"videoId", "score"} for r in body["recommendations"]
        )
        assert body["degraded"] is False and body["partial"] is False

    def test_unknown_video_404(self, service):
        status, _, payload = service.handle("GET", "/recommend/nope")
        assert status == 404
        assert body_of(payload)["error"]["kind"] == "not_found"

    def test_unknown_route_404(self, service):
        assert service.handle("GET", "/wat")[0] == 404

    def test_wrong_method_405(self, service, live):
        video = live.video_ids[0]
        assert service.handle("POST", f"/recommend/{video}")[0] == 405
        assert service.handle("GET", "/interaction")[0] == 405

    def test_bad_top_k_400(self, service, live):
        video = live.video_ids[0]
        status, _, payload = service.handle(
            "GET", f"/recommend/{video}", {"top_k": "0"}
        )
        assert status == 400
        assert body_of(payload)["error"]["kind"] == "bad_request"
        assert service.handle(
            "GET", f"/recommend/{video}", {"top_k": "2000"}
        )[0] == 400

    def test_bad_deadline_header_400(self, service, live):
        video = live.video_ids[0]
        for bad in ("abc", "-5", "0"):
            status, _, _ = service.handle(
                "GET", f"/recommend/{video}", {}, {"X-Deadline-Ms": bad}
            )
            assert status == 400

    def test_drain_rejects_new_work_with_503(self, service, live):
        service.begin_drain()
        video = live.video_ids[0]
        status, _, payload = service.handle("GET", f"/recommend/{video}")
        assert status == 503
        assert body_of(payload)["error"]["kind"] == "draining"
        status, _, _ = service.handle("POST", "/interaction", body=b"{}")
        assert status == 503

    def test_videos_listing_with_limit(self, service, live):
        status, _, payload = service.handle("GET", "/videos", {"limit": "3"})
        assert status == 200
        body = body_of(payload)
        assert body["count"] == len(live.video_ids)
        assert len(body["videos"]) == 3

    def test_stats_json_and_prometheus(self, service):
        status, _, payload = service.handle("GET", "/stats")
        assert status == 200
        assert "counters" in body_of(payload)
        status, extra, payload = service.handle(
            "GET", "/stats", {"format": "prom"}
        )
        assert status == 200
        assert extra["Content-Type"].startswith("text/plain")
        assert b"# TYPE" in payload


class TestResponseCache:
    def test_hit_is_bit_identical(self, service, live):
        video = live.video_ids[0]
        _, extra1, payload1 = service.handle("GET", f"/recommend/{video}")
        _, extra2, payload2 = service.handle("GET", f"/recommend/{video}")
        assert extra1["X-Cache"] == "miss"
        assert extra2["X-Cache"] == "hit"
        assert payload1 == payload2

    def test_epoch_publication_invalidates(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(apply_every=1))
        video = live.video_ids[0]
        service.handle("GET", f"/recommend/{video}")
        assert service.handle("GET", f"/recommend/{video}")[1]["X-Cache"] == "hit"
        doc = {"user_id": "u-cache", "video_id": video, "interaction_id": "i-1"}
        status, _, payload = service.handle(
            "POST", "/interaction", body=json.dumps(doc).encode()
        )
        assert status == 200
        assert body_of(payload)["applied_seq"] == 1
        # New epoch: the cached generation is gone, and the fresh body
        # advertises the new applied_seq.
        _, extra, payload = service.handle("GET", f"/recommend/{video}")
        assert extra["X-Cache"] == "miss"
        assert body_of(payload)["applied_seq"] == 1
        assert service.cache.invalidations > 0

    def test_different_top_k_miss_separately(self, service, live):
        video = live.video_ids[0]
        service.handle("GET", f"/recommend/{video}", {"top_k": "3"})
        _, extra, _ = service.handle("GET", f"/recommend/{video}", {"top_k": "4"})
        assert extra["X-Cache"] == "miss"


class TestRateLimit:
    def test_bucket_enforced_with_hint(self, live, tmp_path):
        now = [100.0]
        service = make_service(
            live,
            tmp_path,
            NetConfig(rate_limit=10.0, rate_burst=2),
            clock=lambda: now[0],
        )
        video = live.video_ids[0]
        assert service.handle("GET", f"/recommend/{video}", client="c1")[0] == 200
        assert service.handle("GET", f"/recommend/{video}", client="c1")[0] == 200
        status, extra, payload = service.handle(
            "GET", f"/recommend/{video}", client="c1"
        )
        assert status == 429
        body = body_of(payload)
        assert body["error"]["kind"] == "rate_limited"
        assert body["error"]["retry_after_ms"] == pytest.approx(100.0)
        assert extra["Retry-After"] == "1"
        assert extra["X-Retry-After-Ms"] == "100"
        # Other clients are unaffected; time refills the bucket.
        assert service.handle("GET", f"/recommend/{video}", client="c2")[0] == 200
        now[0] += 0.2
        assert service.handle("GET", f"/recommend/{video}", client="c1")[0] == 200

    def test_limiter_unit_refill_and_eviction(self):
        now = [0.0]
        limiter = TokenBucketLimiter(2.0, burst=1, max_keys=2, clock=lambda: now[0])
        assert limiter.check("a") is None
        hint = limiter.check("a")
        assert hint == pytest.approx(500.0)
        now[0] += 0.5
        assert limiter.check("a") is None
        # LRU eviction bounds adversarial key minting.
        limiter.check("b")
        limiter.check("c")
        assert len(limiter._buckets) == 2


class TestInteractions:
    def _post(self, service, doc):
        return service.handle(
            "POST", "/interaction", body=json.dumps(doc).encode("utf-8")
        )

    def test_logged_durably_with_ack(self, service, live):
        video = live.video_ids[0]
        status, _, payload = self._post(
            service,
            {"user_id": "u1", "video_id": video, "interaction_id": "i-1",
             "watched_percent": 80, "liked": 1},
        )
        assert status == 200
        body = body_of(payload)
        assert body == {
            "status": "logged",
            "interaction_id": "i-1",
            "seq": 1,
            "duplicate": False,
            "applied_seq": 0,
        }
        records = read_interactions(service.interactions.path)
        assert [r["interaction_id"] for r in records] == ["i-1"]

    def test_duplicate_id_acked_without_relogging(self, service, live):
        video = live.video_ids[0]
        doc = {"user_id": "u1", "video_id": video, "interaction_id": "i-dup"}
        assert self._post(service, doc)[0] == 200
        status, _, payload = self._post(service, doc)
        assert status == 200
        assert body_of(payload)["duplicate"] is True
        assert len(read_interactions(service.interactions.path)) == 1

    def test_validation_errors_400(self, service, live):
        video = live.video_ids[0]
        cases = [
            {},  # missing both ids
            {"user_id": "u1"},
            {"user_id": "u1", "video_id": video, "liked": 7},
            {"user_id": "u1", "video_id": video, "watched_percent": 150},
            {"user_id": "u1", "video_id": video, "surprise": 1},
        ]
        for doc in cases:
            assert self._post(service, doc)[0] == 400, doc

    def test_malformed_json_400(self, service):
        status, _, payload = service.handle(
            "POST", "/interaction", body=b"{not json"
        )
        assert status == 400
        assert body_of(payload)["error"]["kind"] == "bad_request"

    def test_unknown_video_404(self, service):
        assert self._post(
            service, {"user_id": "u1", "video_id": "ghost"}
        )[0] == 404

    def test_oversized_body_413(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(max_body_bytes=64))
        status, _, payload = service.handle(
            "POST", "/interaction", body=b"x" * 65
        )
        assert status == 413
        assert body_of(payload)["error"]["kind"] == "too_large"

    def test_apply_every_folds_batches(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(apply_every=2))
        video = live.video_ids[0]
        epoch_before = service._current_epoch_key()
        self._post(service, {"user_id": "u1", "video_id": video, "interaction_id": "a"})
        assert service.applied_seq == 0  # batch not full yet
        self._post(service, {"user_id": "u2", "video_id": video, "interaction_id": "b"})
        assert service.applied_seq == 2
        assert service._current_epoch_key() != epoch_before

    def test_restart_replays_log(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(apply_every=1), name="r.wal")
        video = live.video_ids[0]
        self._post(service, {"user_id": "u1", "video_id": video, "interaction_id": "x"})
        assert service.applied_seq == 1
        service.flush()
        reborn = make_service(live, tmp_path, name="r.wal")
        assert reborn.applied_seq == 1
        status, _, payload = reborn.handle("GET", "/readyz")
        assert body_of(payload)["applied_seq"] == 1


class _StubResult(list):
    def __init__(self, ids, **attrs):
        super().__init__(ids)
        defaults = {
            "scores": [1.0] * len(ids),
            "epoch_id": 0,
            "omega_served": 0.7,
            "degraded": False,
            "partial": False,
            "reasons": (),
            "scored": len(ids),
            "total": len(ids),
        }
        defaults.update(attrs)
        for name, value in defaults.items():
            setattr(self, name, value)


class _StubGateway:
    """Serves canned results; lets tests force partial/degraded/errors."""

    def __init__(self, result=None, error=None):
        self.result = result
        self.error = error

        class _Epoch:
            epoch_id = 0
            series = {"v1": None, "v2": None}
            video_ids = ["v1", "v2"]

        self.current_epoch = _Epoch()

    def recommend(self, video_id, top_k, deadline=None):
        if self.error is not None:
            raise self.error
        return self.result

    def apply_comments(self, pairs):
        pass


def stub_service(tmp_path, **stub_kwargs):
    return RecommendService(
        _StubGateway(**stub_kwargs), InteractionLog(tmp_path / "stub.wal")
    )


class TestStatusMapping:
    def test_expired_deadline_is_504_with_partial_body(self, tmp_path):
        result = _StubResult(["v2"], partial=True, reasons=("deadline",))
        service = stub_service(tmp_path, result=result)
        status, extra, payload = service.handle(
            "GET", "/recommend/v1", {}, {"X-Deadline-Ms": "5"}
        )
        assert status == 504
        body = body_of(payload)
        assert body["partial"] is True
        assert body["recommendations"] == [{"videoId": "v2", "score": 1.0}]
        # Partial rankings are never cached: the next request rescans.
        assert service.handle(
            "GET", "/recommend/v1", {}, {"X-Deadline-Ms": "5"}
        )[1]["X-Cache"] == "miss"

    def test_degraded_stays_200_flagged_and_uncached(self, tmp_path):
        result = _StubResult(["v2"], degraded=True, reasons=("breaker_open",))
        service = stub_service(tmp_path, result=result)
        status, extra, payload = service.handle("GET", "/recommend/v1")
        assert status == 200
        body = body_of(payload)
        assert body["degraded"] is True
        assert body["reasons"] == ["breaker_open"]
        assert service.handle("GET", "/recommend/v1")[1]["X-Cache"] == "miss"

    def test_overload_is_429_with_retry_after(self, tmp_path):
        service = stub_service(
            tmp_path, error=OverloadedError("full", retry_after_ms=75.0)
        )
        status, extra, payload = service.handle("GET", "/recommend/v1")
        assert status == 429
        assert body_of(payload)["error"]["kind"] == "overloaded"
        assert extra["X-Retry-After-Ms"] == "75"

    def test_unexpected_exception_is_500_without_traceback(self, tmp_path):
        service = stub_service(tmp_path, error=RuntimeError("kaboom"))
        status, _, payload = service.handle("GET", "/recommend/v1")
        assert status == 500
        body = body_of(payload)
        assert body["error"]["kind"] == "internal"
        assert "Traceback" not in payload.decode("utf-8")


class TestOverSockets:
    @pytest.fixture()
    def server(self, service):
        with ReproHTTPServer(service) as server:
            yield server

    def test_end_to_end_recommend_and_cache(self, server, live):
        client = RetryingClient(server.url)
        video = live.video_ids[0]
        first = client.recommend(video, top_k=5)
        second = client.recommend(video, top_k=5)
        assert first.status == 200 and second.status == 200
        assert first.header("X-Cache") == "miss"
        assert second.header("X-Cache") == "hit"
        assert first.body == second.body

    def test_interaction_round_trip(self, server, live):
        client = RetryingClient(server.url)
        video = live.video_ids[0]
        response = client.interaction("u-sock", video, watched_percent=50, liked=1)
        assert response.status == 200
        assert response.json()["duplicate"] is False

    def test_oversized_body_refused_without_reading(self, service, live):
        with ReproHTTPServer(service) as server:
            client = RetryingClient(server.url)
            huge = b"x" * (service.config.max_body_bytes + 1)
            response = client.request("POST", "/interaction", body=huge)
            assert response.status == 413

    def test_fault_injection_503_then_recovers(self, live, tmp_path):
        faults = FaultPlan(fail_at={NET_REQUEST_POINT: 1})
        service = make_service(live, tmp_path)
        with ReproHTTPServer(service, faults=faults) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=3, backoff=0.01)
            )
            response = client.recommend(live.video_ids[0])
            # The injected 503 was retried away; the payload is intact.
            assert response.status == 200
            assert client.stats["retries"] == 1

    def test_response_point_fault_torn_read_retried(self, live, tmp_path):
        # A fault at the response point aborts the write mid-body: the
        # client sees a torn read, and — the request being idempotent —
        # retries it to a clean 200.
        faults = FaultPlan(fail_at={NET_RESPONSE_POINT: 1})
        service = make_service(live, tmp_path)
        with ReproHTTPServer(service, faults=faults) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=3, backoff=0.01)
            )
            response = client.recommend(live.video_ids[0])
            assert response.status == 200
            assert client.stats["retries"] == 1

    def test_mid_response_abort_retried_by_client(self, live, tmp_path):
        service = make_service(live, tmp_path)
        chaos = ChaosSchedule(abort_every=2)
        with ReproHTTPServer(service, chaos=chaos) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=4, backoff=0.01)
            )
            video = live.video_ids[0]
            for _ in range(4):
                assert client.recommend(video).status == 200
            assert client.stats["retries"] >= 1

    def test_abort_during_interaction_deduped_on_retry(self, live, tmp_path):
        service = make_service(live, tmp_path)
        chaos = ChaosSchedule(abort_every=1)  # every response dies mid-write
        with ReproHTTPServer(service, chaos=chaos) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=4, backoff=0.01)
            )
            with pytest.raises(NetClientError):
                client.interaction("u-abort", live.video_ids[0])
        # Every retry carried the same interaction_id: logged exactly once.
        records = read_interactions(service.interactions.path)
        assert len(records) == 1

    def test_graceful_drain_finishes_and_flushes(self, live, tmp_path):
        service = make_service(live, tmp_path)
        server = ReproHTTPServer(service).start()
        client = RetryingClient(server.url)
        video = live.video_ids[0]
        assert client.recommend(video).status == 200
        assert client.readyz().status == 200
        leftover = server.drain(timeout=2.0)
        assert leftover == 0
        assert service.draining
        # The listener is down: a fresh connection is refused.
        probe = RetryingClient(server.url, RetryPolicy(attempts=1, timeout=0.5))
        with pytest.raises(NetClientError):
            probe.healthz()
