"""HTTP front-end: routing, cache, rate limit, interactions, drain, chaos.

Most tests exercise :class:`RecommendService.handle` directly — the
transport-independent core — against a real live index; the deadline/
degraded status mappings use a stub gateway (a tiny index finishes its
scan before any real deadline can expire).  The final class goes through
real sockets: :class:`ReproHTTPServer` + :class:`RetryingClient`,
including fault injection, mid-response aborts and graceful drain.
"""

from __future__ import annotations

import json

import pytest

from repro.core import LiveCommunityIndex
from repro.errors import NetClientError, OverloadedError
from repro.net import (
    ChaosSchedule,
    InteractionLog,
    NetConfig,
    RecommendService,
    ReproHTTPServer,
    RetryingClient,
    RetryPolicy,
    TokenBucketLimiter,
    read_interactions,
)
from repro.net.server import NET_REQUEST_POINT, NET_RESPONSE_POINT
from repro.serving import ServingGateway
from repro.testing.faults import FaultPlan


@pytest.fixture(scope="module")
def live(workload, config):
    dataset = workload.dataset
    live = LiveCommunityIndex(dataset.subset(sorted(dataset.records)), config)
    live.dataset.comments = list(dataset.comments)
    return live


@pytest.fixture()
def service(live, tmp_path):
    gateway = ServingGateway(live)
    return RecommendService(
        gateway, InteractionLog(tmp_path / "interactions.wal")
    )


def body_of(payload: bytes) -> dict:
    return json.loads(payload.decode("utf-8"))


def make_service(live, tmp_path, config=None, clock=None, name="log.wal"):
    kwargs = {} if clock is None else {"clock": clock}
    return RecommendService(
        ServingGateway(live),
        InteractionLog(tmp_path / name),
        config,
        **kwargs,
    )


class TestRouting:
    def test_healthz_always_200(self, service):
        status, _, payload = service.handle("GET", "/healthz")
        assert status == 200
        assert body_of(payload) == {"status": "ok"}
        service.begin_drain()
        assert service.handle("GET", "/healthz")[0] == 200

    def test_readyz_reports_epoch_and_goes_red_on_drain(self, service):
        status, _, payload = service.handle("GET", "/readyz")
        assert status == 200
        body = body_of(payload)
        assert body["status"] == "ready"
        assert body["applied_seq"] == 0
        service.begin_drain()
        status, _, payload = service.handle("GET", "/readyz")
        assert status == 503
        assert body_of(payload)["status"] == "draining"

    def test_recommend_happy_path(self, service, live):
        video = live.video_ids[0]
        status, extra, payload = service.handle(
            "GET", f"/recommend/{video}", {"top_k": "5"}
        )
        assert status == 200
        assert extra["X-Cache"] == "miss"
        body = body_of(payload)
        assert body["query"] == video
        assert 0 < len(body["recommendations"]) <= 5
        assert all(
            set(r) == {"videoId", "score"} for r in body["recommendations"]
        )
        assert body["degraded"] is False and body["partial"] is False

    def test_unknown_video_404(self, service):
        status, _, payload = service.handle("GET", "/recommend/nope")
        assert status == 404
        assert body_of(payload)["error"]["kind"] == "not_found"

    def test_unknown_route_404(self, service):
        assert service.handle("GET", "/wat")[0] == 404

    def test_wrong_method_405(self, service, live):
        video = live.video_ids[0]
        assert service.handle("POST", f"/recommend/{video}")[0] == 405
        assert service.handle("GET", "/interaction")[0] == 405

    def test_bad_top_k_400(self, service, live):
        video = live.video_ids[0]
        status, _, payload = service.handle(
            "GET", f"/recommend/{video}", {"top_k": "0"}
        )
        assert status == 400
        assert body_of(payload)["error"]["kind"] == "bad_request"
        assert service.handle(
            "GET", f"/recommend/{video}", {"top_k": "2000"}
        )[0] == 400

    def test_bad_deadline_header_400(self, service, live):
        video = live.video_ids[0]
        for bad in ("abc", "-5", "0"):
            status, _, _ = service.handle(
                "GET", f"/recommend/{video}", {}, {"X-Deadline-Ms": bad}
            )
            assert status == 400

    def test_drain_rejects_new_work_with_503(self, service, live):
        service.begin_drain()
        video = live.video_ids[0]
        status, _, payload = service.handle("GET", f"/recommend/{video}")
        assert status == 503
        assert body_of(payload)["error"]["kind"] == "draining"
        status, _, _ = service.handle("POST", "/interaction", body=b"{}")
        assert status == 503

    def test_videos_listing_with_limit(self, service, live):
        status, _, payload = service.handle("GET", "/videos", {"limit": "3"})
        assert status == 200
        body = body_of(payload)
        assert body["count"] == len(live.video_ids)
        assert len(body["videos"]) == 3

    def test_stats_json_and_prometheus(self, service):
        status, _, payload = service.handle("GET", "/stats")
        assert status == 200
        assert "counters" in body_of(payload)
        status, extra, payload = service.handle(
            "GET", "/stats", {"format": "prom"}
        )
        assert status == 200
        assert extra["Content-Type"].startswith("text/plain")
        assert b"# TYPE" in payload


class TestResponseCache:
    def test_hit_is_bit_identical(self, service, live):
        video = live.video_ids[0]
        _, extra1, payload1 = service.handle("GET", f"/recommend/{video}")
        _, extra2, payload2 = service.handle("GET", f"/recommend/{video}")
        assert extra1["X-Cache"] == "miss"
        assert extra2["X-Cache"] == "hit"
        assert payload1 == payload2

    def test_epoch_publication_invalidates(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(apply_every=1))
        video = live.video_ids[0]
        service.handle("GET", f"/recommend/{video}")
        assert service.handle("GET", f"/recommend/{video}")[1]["X-Cache"] == "hit"
        doc = {"user_id": "u-cache", "video_id": video, "interaction_id": "i-1"}
        status, _, payload = service.handle(
            "POST", "/interaction", body=json.dumps(doc).encode()
        )
        assert status == 200
        assert body_of(payload)["applied_seq"] == 1
        # New epoch: the cached generation is gone, and the fresh body
        # advertises the new applied_seq.
        _, extra, payload = service.handle("GET", f"/recommend/{video}")
        assert extra["X-Cache"] == "miss"
        assert body_of(payload)["applied_seq"] == 1
        assert service.cache.invalidations > 0

    def test_different_top_k_miss_separately(self, service, live):
        video = live.video_ids[0]
        service.handle("GET", f"/recommend/{video}", {"top_k": "3"})
        _, extra, _ = service.handle("GET", f"/recommend/{video}", {"top_k": "4"})
        assert extra["X-Cache"] == "miss"


class TestRateLimit:
    def test_bucket_enforced_with_hint(self, live, tmp_path):
        now = [100.0]
        service = make_service(
            live,
            tmp_path,
            NetConfig(rate_limit=10.0, rate_burst=2),
            clock=lambda: now[0],
        )
        video = live.video_ids[0]
        assert service.handle("GET", f"/recommend/{video}", client="c1")[0] == 200
        assert service.handle("GET", f"/recommend/{video}", client="c1")[0] == 200
        status, extra, payload = service.handle(
            "GET", f"/recommend/{video}", client="c1"
        )
        assert status == 429
        body = body_of(payload)
        assert body["error"]["kind"] == "rate_limited"
        assert body["error"]["retry_after_ms"] == pytest.approx(100.0)
        assert extra["Retry-After"] == "1"
        assert extra["X-Retry-After-Ms"] == "100"
        # Other clients are unaffected; time refills the bucket.
        assert service.handle("GET", f"/recommend/{video}", client="c2")[0] == 200
        now[0] += 0.2
        assert service.handle("GET", f"/recommend/{video}", client="c1")[0] == 200

    def test_limiter_unit_refill_and_eviction(self):
        now = [0.0]
        limiter = TokenBucketLimiter(2.0, burst=1, max_keys=2, clock=lambda: now[0])
        assert limiter.check("a") is None
        hint = limiter.check("a")
        assert hint == pytest.approx(500.0)
        now[0] += 0.5
        assert limiter.check("a") is None
        # LRU eviction bounds adversarial key minting.
        limiter.check("b")
        limiter.check("c")
        assert len(limiter._buckets) == 2


class TestInteractions:
    def _post(self, service, doc):
        return service.handle(
            "POST", "/interaction", body=json.dumps(doc).encode("utf-8")
        )

    def test_logged_durably_with_ack(self, service, live):
        video = live.video_ids[0]
        status, _, payload = self._post(
            service,
            {"user_id": "u1", "video_id": video, "interaction_id": "i-1",
             "watched_percent": 80, "liked": 1},
        )
        assert status == 200
        body = body_of(payload)
        assert body == {
            "status": "logged",
            "interaction_id": "i-1",
            "seq": 1,
            "duplicate": False,
            "applied_seq": 0,
        }
        records = read_interactions(service.interactions.path)
        assert [r["interaction_id"] for r in records] == ["i-1"]

    def test_duplicate_id_acked_without_relogging(self, service, live):
        video = live.video_ids[0]
        doc = {"user_id": "u1", "video_id": video, "interaction_id": "i-dup"}
        assert self._post(service, doc)[0] == 200
        status, _, payload = self._post(service, doc)
        assert status == 200
        assert body_of(payload)["duplicate"] is True
        assert len(read_interactions(service.interactions.path)) == 1

    def test_validation_errors_400(self, service, live):
        video = live.video_ids[0]
        cases = [
            {},  # missing both ids
            {"user_id": "u1"},
            {"user_id": "u1", "video_id": video, "liked": 7},
            {"user_id": "u1", "video_id": video, "watched_percent": 150},
            {"user_id": "u1", "video_id": video, "surprise": 1},
        ]
        for doc in cases:
            assert self._post(service, doc)[0] == 400, doc

    def test_malformed_json_400(self, service):
        status, _, payload = service.handle(
            "POST", "/interaction", body=b"{not json"
        )
        assert status == 400
        assert body_of(payload)["error"]["kind"] == "bad_request"

    def test_unknown_video_404(self, service):
        assert self._post(
            service, {"user_id": "u1", "video_id": "ghost"}
        )[0] == 404

    def test_oversized_body_413(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(max_body_bytes=64))
        status, _, payload = service.handle(
            "POST", "/interaction", body=b"x" * 65
        )
        assert status == 413
        assert body_of(payload)["error"]["kind"] == "too_large"

    def test_apply_every_folds_batches(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(apply_every=2))
        video = live.video_ids[0]
        epoch_before = service._current_epoch_key()
        self._post(service, {"user_id": "u1", "video_id": video, "interaction_id": "a"})
        assert service.applied_seq == 0  # batch not full yet
        self._post(service, {"user_id": "u2", "video_id": video, "interaction_id": "b"})
        assert service.applied_seq == 2
        assert service._current_epoch_key() != epoch_before

    def test_restart_replays_log(self, live, tmp_path):
        service = make_service(live, tmp_path, NetConfig(apply_every=1), name="r.wal")
        video = live.video_ids[0]
        self._post(service, {"user_id": "u1", "video_id": video, "interaction_id": "x"})
        assert service.applied_seq == 1
        service.flush()
        reborn = make_service(live, tmp_path, name="r.wal")
        assert reborn.applied_seq == 1
        status, _, payload = reborn.handle("GET", "/readyz")
        assert body_of(payload)["applied_seq"] == 1


class _StubResult(list):
    def __init__(self, ids, **attrs):
        super().__init__(ids)
        defaults = {
            "scores": [1.0] * len(ids),
            "epoch_id": 0,
            "omega_served": 0.7,
            "degraded": False,
            "partial": False,
            "reasons": (),
            "scored": len(ids),
            "total": len(ids),
        }
        defaults.update(attrs)
        for name, value in defaults.items():
            setattr(self, name, value)


class _StubGateway:
    """Serves canned results; lets tests force partial/degraded/errors."""

    def __init__(self, result=None, error=None):
        self.result = result
        self.error = error

        class _Epoch:
            epoch_id = 0
            series = {"v1": None, "v2": None}
            video_ids = ["v1", "v2"]

        self.current_epoch = _Epoch()

    def recommend(self, video_id, top_k, deadline=None):
        if self.error is not None:
            raise self.error
        return self.result

    def apply_comments(self, pairs):
        pass


def stub_service(tmp_path, **stub_kwargs):
    return RecommendService(
        _StubGateway(**stub_kwargs), InteractionLog(tmp_path / "stub.wal")
    )


class TestStatusMapping:
    def test_expired_deadline_is_504_with_partial_body(self, tmp_path):
        result = _StubResult(["v2"], partial=True, reasons=("deadline",))
        service = stub_service(tmp_path, result=result)
        status, extra, payload = service.handle(
            "GET", "/recommend/v1", {}, {"X-Deadline-Ms": "5"}
        )
        assert status == 504
        body = body_of(payload)
        assert body["partial"] is True
        assert body["recommendations"] == [{"videoId": "v2", "score": 1.0}]
        # Partial rankings are never cached: the next request rescans.
        assert service.handle(
            "GET", "/recommend/v1", {}, {"X-Deadline-Ms": "5"}
        )[1]["X-Cache"] == "miss"

    def test_degraded_stays_200_flagged_and_uncached(self, tmp_path):
        result = _StubResult(["v2"], degraded=True, reasons=("breaker_open",))
        service = stub_service(tmp_path, result=result)
        status, extra, payload = service.handle("GET", "/recommend/v1")
        assert status == 200
        body = body_of(payload)
        assert body["degraded"] is True
        assert body["reasons"] == ["breaker_open"]
        assert service.handle("GET", "/recommend/v1")[1]["X-Cache"] == "miss"

    def test_overload_is_429_with_retry_after(self, tmp_path):
        service = stub_service(
            tmp_path, error=OverloadedError("full", retry_after_ms=75.0)
        )
        status, extra, payload = service.handle("GET", "/recommend/v1")
        assert status == 429
        assert body_of(payload)["error"]["kind"] == "overloaded"
        assert extra["X-Retry-After-Ms"] == "75"

    def test_unexpected_exception_is_500_without_traceback(self, tmp_path):
        service = stub_service(tmp_path, error=RuntimeError("kaboom"))
        status, _, payload = service.handle("GET", "/recommend/v1")
        assert status == 500
        body = body_of(payload)
        assert body["error"]["kind"] == "internal"
        assert "Traceback" not in payload.decode("utf-8")


class TestOverSockets:
    @pytest.fixture()
    def server(self, service):
        with ReproHTTPServer(service) as server:
            yield server

    def test_end_to_end_recommend_and_cache(self, server, live):
        client = RetryingClient(server.url)
        video = live.video_ids[0]
        first = client.recommend(video, top_k=5)
        second = client.recommend(video, top_k=5)
        assert first.status == 200 and second.status == 200
        assert first.header("X-Cache") == "miss"
        assert second.header("X-Cache") == "hit"
        assert first.body == second.body

    def test_interaction_round_trip(self, server, live):
        client = RetryingClient(server.url)
        video = live.video_ids[0]
        response = client.interaction("u-sock", video, watched_percent=50, liked=1)
        assert response.status == 200
        assert response.json()["duplicate"] is False

    def test_oversized_body_refused_without_reading(self, service, live):
        with ReproHTTPServer(service) as server:
            client = RetryingClient(server.url)
            huge = b"x" * (service.config.max_body_bytes + 1)
            response = client.request("POST", "/interaction", body=huge)
            assert response.status == 413

    def test_fault_injection_503_then_recovers(self, live, tmp_path):
        faults = FaultPlan(fail_at={NET_REQUEST_POINT: 1})
        service = make_service(live, tmp_path)
        with ReproHTTPServer(service, faults=faults) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=3, backoff=0.01)
            )
            response = client.recommend(live.video_ids[0])
            # The injected 503 was retried away; the payload is intact.
            assert response.status == 200
            assert client.stats["retries"] == 1

    def test_response_point_fault_torn_read_retried(self, live, tmp_path):
        # A fault at the response point aborts the write mid-body: the
        # client sees a torn read, and — the request being idempotent —
        # retries it to a clean 200.
        faults = FaultPlan(fail_at={NET_RESPONSE_POINT: 1})
        service = make_service(live, tmp_path)
        with ReproHTTPServer(service, faults=faults) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=3, backoff=0.01)
            )
            response = client.recommend(live.video_ids[0])
            assert response.status == 200
            assert client.stats["retries"] == 1

    def test_mid_response_abort_retried_by_client(self, live, tmp_path):
        service = make_service(live, tmp_path)
        chaos = ChaosSchedule(abort_every=2)
        with ReproHTTPServer(service, chaos=chaos) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=4, backoff=0.01)
            )
            video = live.video_ids[0]
            for _ in range(4):
                assert client.recommend(video).status == 200
            assert client.stats["retries"] >= 1

    def test_abort_during_interaction_deduped_on_retry(self, live, tmp_path):
        service = make_service(live, tmp_path)
        chaos = ChaosSchedule(abort_every=1)  # every response dies mid-write
        with ReproHTTPServer(service, chaos=chaos) as server:
            client = RetryingClient(
                server.url, RetryPolicy(attempts=4, backoff=0.01)
            )
            with pytest.raises(NetClientError):
                client.interaction("u-abort", live.video_ids[0])
        # Every retry carried the same interaction_id: logged exactly once.
        records = read_interactions(service.interactions.path)
        assert len(records) == 1

    def test_graceful_drain_finishes_and_flushes(self, live, tmp_path):
        service = make_service(live, tmp_path)
        server = ReproHTTPServer(service).start()
        client = RetryingClient(server.url)
        video = live.video_ids[0]
        assert client.recommend(video).status == 200
        assert client.readyz().status == 200
        leftover = server.drain(timeout=2.0)
        assert leftover == 0
        assert service.draining
        # The listener is down: a fresh connection is refused.
        probe = RetryingClient(server.url, RetryPolicy(attempts=1, timeout=0.5))
        with pytest.raises(NetClientError):
            probe.healthz()


class TestLimiterEvictionCarryOver:
    """LRU eviction must not mint fresh bursts for churned identities.

    Pre-fix, a key admitted while the table was full evicted the LRU
    victim and started with a **full** bucket — an adversary cycling
    through ``max_keys + 1`` ids inherited ``burst`` free requests per
    rotation.  Post-fix the newcomer inherits the victim's refilled
    balance, so churn keeps re-inheriting its own drained bucket while a
    long-idle victim's bucket has refilled to (near) full anyway.
    """

    def _limiter(self, now, **kwargs):
        defaults = dict(rate=1.0, burst=5, max_keys=1, clock=lambda: now[0])
        defaults.update(kwargs)
        return TokenBucketLimiter(**defaults)

    def test_churned_key_inherits_drained_bucket(self):
        now = [0.0]
        limiter = self._limiter(now)
        for _ in range(5):
            assert limiter.check("attacker-1") is None
        assert limiter.check("attacker-1") is not None  # drained
        # Rotate identity immediately: same host, fresh key.  Pre-fix
        # this admitted 5 more requests; post-fix the drained balance
        # carries over and the very first request is rejected.
        assert limiter.check("attacker-2") is not None

    def test_rotation_cannot_outrun_refill_rate(self):
        now = [0.0]
        limiter = self._limiter(now)
        admitted = 0
        for step in range(30):
            now[0] = step * 0.5  # 2 rotations/second, refill 1 token/s
            if limiter.check(f"rotating-{step}") is None:
                admitted += 1
        # 14.5 seconds at 1 token/s + the initial burst of 5; pre-fix
        # every rotation was admitted (30).
        assert admitted <= 5 + 15

    def test_idle_victim_readmitted_with_refilled_bucket(self):
        now = [0.0]
        limiter = self._limiter(now)
        for _ in range(5):
            limiter.check("old")
        # Long idle: the evicted bucket would have refilled to burst.
        now[0] = 60.0
        assert limiter.check("new") is None

    def test_carry_over_hint_math_pinned(self):
        now = [0.0]
        limiter = self._limiter(now, rate=2.0)
        for _ in range(5):
            limiter.check("a")
        hint = limiter.check("b")
        # Inherited balance 0.0 -> hint = 1000 * (1 - 0) / rate.
        assert hint == pytest.approx(1000.0 * (1.0 - 0.0) / 2.0)

    def test_below_capacity_keys_still_get_full_burst(self):
        now = [0.0]
        limiter = self._limiter(now, max_keys=4)
        for _ in range(5):
            limiter.check("a")
        for _ in range(5):
            assert limiter.check("b") is None


class TestCacheStaleEpochRejection:
    """A racing put/get carrying a superseded epoch key must never roll
    the generation backward and serve pre-publication bytes.

    Pre-fix, ``_roll_generation`` treated *any* key change as a new
    epoch: a slow thread that read the epoch key before a publication
    could ``put`` under the old key after a fresh thread had rolled
    forward — clearing the fresh generation, adopting the stale key, and
    serving the stale body to the next ``get`` under that key.
    """

    def _entry(self, body=b"{}"):
        return (200, {"Content-Type": "application/json"}, body)

    def test_stale_put_cannot_evict_fresh_generation(self):
        from repro.net.cache import ResponseCache

        cache = ResponseCache()
        cache.put((1, 0), "req", *self._entry(b"fresh"))
        # A thread that raced publication writes under the older key.
        cache.put((0, 0), "req", *self._entry(b"stale"))
        assert cache.get((0, 0), "req") is None  # stale get: miss
        hit = cache.get((1, 0), "req")
        assert hit is not None and hit[2] == b"fresh"
        assert cache.stale_rejections == 2

    def test_stale_int_epoch_rejected(self):
        from repro.net.cache import ResponseCache

        cache = ResponseCache()
        cache.put(5, "req", *self._entry(b"new"))
        cache.put(4, "req", *self._entry(b"old"))
        assert cache.get(5, "req")[2] == b"new"
        assert cache.get(4, "req") is None
        assert cache.stale_rejections == 2

    def test_componentwise_tuple_ordering(self):
        from repro.net.cache import ResponseCache

        cache = ResponseCache()
        cache.put((2, 3), "req", *self._entry())
        # Older in one component, equal in the other: stale.
        assert cache.get((2, 2), "req") is None
        assert cache.stale_rejections == 1
        # Mixed (one ahead, one behind) cannot come from monotonic
        # publication: treated as a new generation (safe roll).
        assert cache.get((1, 4), "req") is None
        assert cache.stale_rejections == 1
        assert len(cache) == 0  # rolled and cleared

    def test_forward_roll_still_invalidates(self):
        from repro.net.cache import ResponseCache

        cache = ResponseCache()
        cache.put((1, 1), "req", *self._entry())
        cache.put((1, 2), "req", *self._entry(b"next"))
        assert cache.invalidations == 1
        assert cache.get((1, 2), "req")[2] == b"next"

    def test_topology_change_rolls_safely(self):
        from repro.net.cache import ResponseCache

        cache = ResponseCache()
        cache.put((1, 1), "req", *self._entry())
        # Shard count changed: key shape differs, roll and clear.
        cache.put((2, 2, 0), "req", *self._entry(b"resharded"))
        assert cache.get((2, 2, 0), "req")[2] == b"resharded"
        assert cache.stale_rejections == 0

    def test_stale_gauge_exported(self, live, tmp_path):
        from repro.obs.metrics import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        with use_metrics(registry):
            service = make_service(live, tmp_path, NetConfig())
            video = live.video_ids[0]
            service.handle("GET", f"/recommend/{video}")
        assert registry.snapshot()["gauges"]["repro_http_cache_stale_total"] == 0.0
