"""Tests for user interest graph construction."""

from repro.social.descriptor import SocialDescriptor
from repro.social.uig import build_uig, user_video_map


def descriptors(*user_lists):
    return [
        SocialDescriptor.from_users(f"v{i}", users)
        for i, users in enumerate(user_lists)
    ]


class TestUserVideoMap:
    def test_inversion(self):
        mapping = user_video_map(descriptors(["a", "b"], ["b", "c"]))
        assert mapping == {"a": {"v0"}, "b": {"v0", "v1"}, "c": {"v1"}}


class TestBuildUig:
    def test_paper_example(self):
        """The worked example of the paper's Figure 2."""
        interests = {
            "u1": ["V1", "V3", "V8"],
            "u2": ["V3", "V8"],
            "u3": ["V2", "V4", "V5"],
            "u4": ["V1", "V4", "V5"],
            "u5": ["V4", "V5", "V6", "V7"],
        }
        by_video: dict[str, list[str]] = {}
        for user, videos in interests.items():
            for video in videos:
                by_video.setdefault(video, []).append(user)
        graph = build_uig(
            SocialDescriptor.from_users(video, users) for video, users in by_video.items()
        )
        # u1-u2 share V3 and V8 => weight 2.
        assert graph["u1"]["u2"]["weight"] == 2
        # u3-u4 share V4, V5 => 2; u4-u5 share V4, V5 => 2; u3-u5 share V4, V5 => 2.
        assert graph["u3"]["u4"]["weight"] == 2
        assert graph["u4"]["u5"]["weight"] == 2
        # u1-u4 share V1 only.
        assert graph["u1"]["u4"]["weight"] == 1
        # u2 and u3 share nothing.
        assert not graph.has_edge("u2", "u3")

    def test_edge_weight_counts_shared_videos(self):
        graph = build_uig(descriptors(["a", "b"], ["a", "b"], ["a", "b"]))
        assert graph["a"]["b"]["weight"] == 3

    def test_isolated_users_kept_as_nodes(self):
        graph = build_uig(descriptors(["solo"], ["a", "b"]))
        assert "solo" in graph
        assert graph.degree("solo") == 0

    def test_no_self_loops(self):
        graph = build_uig(descriptors(["a", "b", "c"]))
        assert not any(u == v for u, v in graph.edges())

    def test_empty_collection(self):
        graph = build_uig([])
        assert graph.number_of_nodes() == 0


class TestPairCap:
    """The scalability cap must bound edges without isolating anyone.

    Pre-fix, a video with more than ``pair_cap`` users generated a clique
    over the first ``pair_cap`` (sorted) users and left every later user
    as a node with **zero edges** — sub-community extraction then saw
    spurious singletons that Eq.-8 maintenance could never union back.
    The fix chains each capped-out user to its sorted predecessor.
    """

    def test_no_user_isolated_within_a_capped_video(self):
        users = [f"u{i:02d}" for i in range(12)]
        graph = build_uig(descriptors(users), pair_cap=4)
        assert set(graph.nodes) == set(users)
        isolated = [user for user in users if graph.degree(user) == 0]
        assert isolated == []

    def test_capped_video_stays_one_component(self):
        import networkx as nx

        users = [f"u{i:02d}" for i in range(20)]
        graph = build_uig(descriptors(users), pair_cap=3)
        assert nx.number_connected_components(graph) == 1

    def test_edge_budget_is_clique_plus_chain(self):
        users = [f"u{i:02d}" for i in range(15)]
        cap = 5
        graph = build_uig(descriptors(users), pair_cap=cap)
        # C(cap, 2) clique edges + one chain edge per capped-out user.
        assert graph.number_of_edges() == cap * (cap - 1) // 2 + (15 - cap)

    def test_cap_at_least_video_size_matches_uncapped(self):
        users = [f"u{i:02d}" for i in range(6)]
        capped = build_uig(descriptors(users), pair_cap=6)
        full = build_uig(descriptors(users))
        assert set(capped.edges) == set(full.edges)
        for first, second in full.edges:
            assert capped[first][second]["weight"] == full[first][second]["weight"]

    def test_chain_weights_accumulate_across_videos(self):
        users = ["a", "b", "c", "d"]
        graph = build_uig(descriptors(users, users), pair_cap=2)
        # Chain edges (b-c, c-d) count once per video, like clique edges.
        assert graph["a"]["b"]["weight"] == 2
        assert graph["b"]["c"]["weight"] == 2
        assert graph["c"]["d"]["weight"] == 2

    def test_cap_below_two_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="pair_cap"):
            build_uig(descriptors(["a", "b"]), pair_cap=1)
