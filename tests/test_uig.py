"""Tests for user interest graph construction."""

from repro.social.descriptor import SocialDescriptor
from repro.social.uig import build_uig, user_video_map


def descriptors(*user_lists):
    return [
        SocialDescriptor.from_users(f"v{i}", users)
        for i, users in enumerate(user_lists)
    ]


class TestUserVideoMap:
    def test_inversion(self):
        mapping = user_video_map(descriptors(["a", "b"], ["b", "c"]))
        assert mapping == {"a": {"v0"}, "b": {"v0", "v1"}, "c": {"v1"}}


class TestBuildUig:
    def test_paper_example(self):
        """The worked example of the paper's Figure 2."""
        interests = {
            "u1": ["V1", "V3", "V8"],
            "u2": ["V3", "V8"],
            "u3": ["V2", "V4", "V5"],
            "u4": ["V1", "V4", "V5"],
            "u5": ["V4", "V5", "V6", "V7"],
        }
        by_video: dict[str, list[str]] = {}
        for user, videos in interests.items():
            for video in videos:
                by_video.setdefault(video, []).append(user)
        graph = build_uig(
            SocialDescriptor.from_users(video, users) for video, users in by_video.items()
        )
        # u1-u2 share V3 and V8 => weight 2.
        assert graph["u1"]["u2"]["weight"] == 2
        # u3-u4 share V4, V5 => 2; u4-u5 share V4, V5 => 2; u3-u5 share V4, V5 => 2.
        assert graph["u3"]["u4"]["weight"] == 2
        assert graph["u4"]["u5"]["weight"] == 2
        # u1-u4 share V1 only.
        assert graph["u1"]["u4"]["weight"] == 1
        # u2 and u3 share nothing.
        assert not graph.has_edge("u2", "u3")

    def test_edge_weight_counts_shared_videos(self):
        graph = build_uig(descriptors(["a", "b"], ["a", "b"], ["a", "b"]))
        assert graph["a"]["b"]["weight"] == 3

    def test_isolated_users_kept_as_nodes(self):
        graph = build_uig(descriptors(["solo"], ["a", "b"]))
        assert "solo" in graph
        assert graph.degree("solo") == 0

    def test_no_self_loops(self):
        graph = build_uig(descriptors(["a", "b", "c"]))
        assert not any(u == v for u, v in graph.edges())

    def test_empty_collection(self):
        graph = build_uig([])
        assert graph.number_of_nodes() == 0
