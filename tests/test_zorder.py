"""Tests for Z-order (Morton) encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.zorder import common_prefix_length, zorder_decode, zorder_encode


class TestEncode:
    def test_known_2d_interleaving(self):
        # x=0b11, y=0b00 with 2 bits: bits interleave x1 y1 x0 y0 = 1010.
        assert zorder_encode([0b11, 0b00], 2) == 0b1010

    def test_single_dimension_is_identity(self):
        assert zorder_encode([13], 4) == 13

    def test_out_of_range_coordinate_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            zorder_encode([4], 2)

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            zorder_encode([-1], 4)

    def test_empty_coordinates_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            zorder_encode([], 4)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError, match="bits_per_dim"):
            zorder_encode([0], 0)


class TestRoundtrip:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda ndim: st.tuples(
                st.lists(st.integers(min_value=0, max_value=255), min_size=ndim, max_size=ndim),
                st.just(8),
            )
        )
    )
    def test_decode_inverts_encode(self, case):
        coordinates, bits = case
        code = zorder_encode(coordinates, bits)
        assert zorder_decode(code, len(coordinates), bits) == coordinates

    def test_locality_example(self):
        """Nearby points share longer prefixes than distant ones."""
        total_bits = 16
        origin = zorder_encode([10, 10], 8)
        near = zorder_encode([10, 11], 8)
        far = zorder_encode([200, 200], 8)
        assert common_prefix_length(origin, near, total_bits) > common_prefix_length(
            origin, far, total_bits
        )


class TestRangePartitioning:
    """The property the Z-order shard router stands on.

    :class:`~repro.sharding.router.ZOrderShardRouter` assigns a key to
    the shard named by its top ``p = log2(shards)`` bits — a key-range
    partition of the curve.  That is only locality-preserving if "same
    shard" and "≥ p shared leading bits" are the *same predicate*: every
    pair of co-resident keys shares at least the prefix the router
    hashed on, and every pair sharing that prefix is co-resident.
    """

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5).flatmap(
            lambda ndim: st.tuples(
                st.lists(
                    st.integers(min_value=0, max_value=255),
                    min_size=ndim,
                    max_size=ndim,
                ),
                st.lists(
                    st.integers(min_value=0, max_value=255),
                    min_size=ndim,
                    max_size=ndim,
                ),
                st.sampled_from([1, 2, 3]),  # p: shards = 2, 4, 8
            )
        )
    )
    def test_same_shard_iff_shared_prefix(self, case):
        first_coords, second_coords, prefix_bits = case
        bits = 8
        total_bits = bits * len(first_coords)
        first = zorder_encode(first_coords, bits)
        second = zorder_encode(second_coords, bits)
        shift = total_bits - prefix_bits
        same_shard = (first >> shift) == (second >> shift)
        shared = common_prefix_length(first, second, total_bits)
        assert same_shard == (shared >= prefix_bits)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=2, max_size=4
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_shard_ids_cover_range(self, coords, prefix_bits):
        bits = 8
        total_bits = bits * len(coords)
        shard = zorder_encode(coords, bits) >> (total_bits - prefix_bits)
        assert 0 <= shard < (1 << prefix_bits)


class TestCommonPrefix:
    def test_identical_codes_share_all_bits(self):
        assert common_prefix_length(42, 42, 16) == 16

    def test_differing_top_bit_shares_nothing(self):
        assert common_prefix_length(0b1000, 0b0000, 4) == 0

    def test_partial_prefix(self):
        assert common_prefix_length(0b1100, 0b1101, 4) == 3

    def test_invalid_total_bits(self):
        with pytest.raises(ValueError, match="total_bits"):
            common_prefix_length(0, 0, 0)
