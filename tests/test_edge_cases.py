"""Cross-cutting edge cases: tiny communities, degenerate inputs, overrides."""

import numpy as np
import pytest

from repro.community import CommunityConfig, generate_community
from repro.community.workload import select_source_videos
from repro.core import CommunityIndex, KTopScoreVideoSearch, RecommenderConfig
from repro.core.recommender import FusionRecommender
from repro.signatures import extract_signature_series
from repro.video.clip import VideoClip


class TestTinyCommunities:
    def test_one_hour_community_builds_and_recommends(self):
        dataset = generate_community(CommunityConfig(hours=1.0, seed=77))
        index = CommunityIndex(dataset, RecommenderConfig(k=4))
        recommender = FusionRecommender(index, omega=0.7, social_mode="sar-h")
        video_id = index.video_ids[0]
        results = recommender.recommend(video_id, top_k=5)
        assert len(results) == 5
        assert video_id not in results

    def test_source_selection_fails_cleanly_without_topic_videos(self):
        dataset = generate_community(CommunityConfig(hours=1.0, seed=77))
        # Remove every video of topic 0 to hit the error path.
        dataset.records = {
            vid: record for vid, record in dataset.records.items() if record.topic != 0
        }
        with pytest.raises(ValueError, match="has no videos"):
            select_source_videos(dataset)


class TestDegenerateClips:
    def test_two_frame_clip_extracts_a_signature(self):
        frames = np.stack([
            np.full((16, 16), 90.0, dtype=np.float32),
            np.full((16, 16), 110.0, dtype=np.float32),
        ])
        series = extract_signature_series(VideoClip("tiny", frames))
        assert len(series) >= 1

    def test_constant_black_clip(self):
        frames = np.zeros((8, 16, 16), dtype=np.float32)
        series = extract_signature_series(VideoClip("black", frames))
        assert all(np.allclose(s.values, 0.0) for s in series)

    def test_max_intensity_clip(self):
        frames = np.full((8, 16, 16), 255.0, dtype=np.float32)
        series = extract_signature_series(VideoClip("white", frames))
        assert len(series) >= 1


class TestOverrides:
    def test_knn_omega_override_changes_ranking_basis(self, workload, index):
        content_only = KTopScoreVideoSearch(index, omega=0.0)
        social_only = KTopScoreVideoSearch(index, omega=1.0)
        query = workload.sources[0]
        content_results = content_only.search(query, 5)
        social_results = social_only.search(query, 5)
        # Scores must reflect the respective single component.
        for result in content_results:
            assert result.score == pytest.approx(min(result.content, 1.0))
        for result in social_results:
            assert result.score == pytest.approx(min(result.social, 1.0))

    def test_recommender_omega_override_beats_config(self, index):
        recommender = FusionRecommender(index, omega=0.25)
        assert recommender.omega == pytest.approx(0.25)
        assert index.config.omega == pytest.approx(0.7)

    def test_index_respects_month_cutoff(self, workload):
        early = CommunityIndex(
            workload.dataset, RecommenderConfig(k=8),
            up_to_month=0, build_lsb=False, build_global_features=False,
        )
        late = CommunityIndex(
            workload.dataset, RecommenderConfig(k=8),
            up_to_month=15, build_lsb=False, build_global_features=False,
        )
        early_total = sum(len(d.users) for d in early.social.descriptors.values())
        late_total = sum(len(d.users) for d in late.social.descriptors.values())
        assert early_total < late_total
