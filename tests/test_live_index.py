"""Live-index maintenance: ingest/retire/comment parity with cold rebuilds.

The acceptance bar for the store refactor: after a randomized sequence of
video ingests, retirements and comment batches, a
:class:`~repro.core.pipeline.LiveCommunityIndex` must produce bit-identical
recommendations to a :class:`~repro.core.pipeline.CommunityIndex` built
cold over the final community, across every ``social_mode`` x ``engine``
combination.  Churn only ever touches "leaf" videos (no other record's
lineage master), so every intermediate community stays clip-derivable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.community.models import Comment, CommunityDataset
from repro.core import (
    CommunityIndex,
    FusionRecommender,
    KTopScoreVideoSearch,
    LiveCommunityIndex,
)
from repro.core.recommender import ENGINES, SOCIAL_MODES


def leaf_ids(dataset: CommunityDataset) -> list[str]:
    """Videos that are nobody's lineage master (safe to add/remove)."""
    parents = {
        record.lineage for record in dataset.records.values() if record.lineage
    }
    return sorted(vid for vid in dataset.records if vid not in parents)


def spare_masters(live: LiveCommunityIndex, dataset: CommunityDataset) -> list[str]:
    """Master videos not yet indexed (always ingestable, no lineage needs)."""
    return sorted(
        vid
        for vid, record in dataset.records.items()
        if record.lineage is None and vid not in live.series
    )


def cold_reference(
    dataset: CommunityDataset, config, video_ids, extra_pairs=()
) -> CommunityIndex:
    """A from-scratch index over *video_ids* with *extra_pairs* folded in."""
    final = dataset.subset(video_ids)
    final.comments.extend(
        Comment(user_id=user, video_id=vid, month=11)
        for user, vid in extra_pairs
        if vid in final.records
    )
    return CommunityIndex(final, config)


@pytest.fixture(scope="module")
def churned(workload, config):
    """One randomized churn run: the live index, its applied comment pairs,
    and the cold rebuild of the identical final community."""
    dataset = workload.dataset
    rng = np.random.default_rng(2015)
    leaves = leaf_ids(dataset)
    pending = [leaves[i] for i in rng.choice(len(leaves), size=10, replace=False)]
    initial = sorted(set(dataset.records) - set(pending))

    live = LiveCommunityIndex(dataset.subset(initial), config)
    # The live dataset's comment log must cover the videos it will ingest,
    # exactly as the CLI's --add path carries history along.
    live.dataset.comments = list(dataset.comments)

    test_comments = [c for c in dataset.comments if c.month >= 12]
    applied: list[tuple[str, str]] = []
    retired: list[str] = []
    for step, video_id in enumerate(pending):
        live.ingest_video(dataset.records[video_id])
        if step % 3 == 1:
            candidates = [
                vid for vid in leaf_ids(live.dataset) if vid in live.series
            ]
            target = candidates[int(rng.integers(len(candidates)))]
            live.retire_video(target)
            retired.append(target)
            # Retirement wipes the video's live social state, so comment
            # pairs applied to it must not reach the cold reference either.
            applied = [(user, vid) for user, vid in applied if vid != target]
        if step % 4 == 2:
            pool = [c for c in test_comments if c.video_id in live.series]
            picks = rng.choice(len(pool), size=min(8, len(pool)), replace=False)
            batch = [(pool[i].user_id, pool[i].video_id) for i in picks]
            live.apply_comments(batch)
            applied.extend(batch)
    # Resurrect one retired video: tombstoned LSB/bank rows must not leak.
    live.ingest_video(dataset.records[retired[0]])

    cold = cold_reference(dataset, config, live.video_ids, applied)
    return {"live": live, "cold": cold}


class TestIncrementalParity:
    def test_final_video_sets_match(self, churned):
        assert churned["live"].video_ids == churned["cold"].video_ids

    def test_descriptors_match(self, churned):
        live, cold = churned["live"], churned["cold"]
        for video_id in cold.video_ids:
            assert (
                live.descriptor(video_id).users == cold.descriptor(video_id).users
            )

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("social_mode", SOCIAL_MODES)
    def test_bit_identical_recommendations(self, churned, social_mode, engine):
        live, cold = churned["live"], churned["cold"]
        queries = cold.video_ids[::17]
        for query in queries:
            assert FusionRecommender(
                live, social_mode=social_mode, engine=engine
            ).recommend(query, 10) == FusionRecommender(
                cold, social_mode=social_mode, engine=engine
            ).recommend(query, 10)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_component_scores_bit_identical(self, churned, engine):
        live, cold = churned["live"], churned["cold"]
        query = cold.video_ids[5]
        mine = FusionRecommender(live, social_mode="sar", engine=engine)
        theirs = FusionRecommender(cold, social_mode="sar", engine=engine)
        for (vid_a, live_scores), (vid_b, cold_scores) in zip(
            sorted(mine.component_scores(query).items()),
            sorted(theirs.component_scores(query).items()),
        ):
            assert vid_a == vid_b
            assert live_scores == cold_scores  # exact, not approximate

    def test_signature_bank_tracks_live_set(self, churned):
        live = churned["live"]
        assert sorted(live.signature_bank().video_ids) == live.video_ids

    def test_lsb_serves_only_live_videos(self, churned):
        live = churned["live"]
        for video_id in live.video_ids:
            assert video_id in live.lsb
        probe_sig = live.series[live.video_ids[0]][0]
        hits = {entry.video_id for _, entry in live.lsb.probe(probe_sig, 200)}
        assert hits <= set(live.video_ids)


@pytest.fixture()
def small_live(workload, config):
    """A fresh, mutable live index over the community's master videos."""
    dataset = workload.dataset
    masters = sorted(
        vid for vid, record in dataset.records.items() if record.lineage is None
    )[:14]
    live = LiveCommunityIndex(dataset.subset(masters), config)
    live.dataset.comments = list(dataset.comments)
    return live


class TestLiveMutations:
    def test_ingest_bumps_content_revision(self, small_live, workload):
        new_id = spare_masters(small_live, workload.dataset)[-1]
        before = small_live.revisions
        small_live.ingest_video(workload.dataset.records[new_id])
        after = small_live.revisions
        assert after[0] > before[0]
        assert after[1] > before[1]
        assert new_id in small_live.video_ids
        assert new_id in small_live.signature_bank().video_ids

    def test_retire_then_recommend_never_returns_ghost(self, small_live):
        ghost = small_live.video_ids[3]
        small_live.retire_video(ghost)
        query = small_live.video_ids[0]
        for engine in ENGINES:
            ranked = FusionRecommender(
                small_live, social_mode="sar-h", engine=engine
            ).recommend(query, len(small_live.video_ids) - 1)
            assert ghost not in ranked

    def test_duplicate_ingest_rejected(self, small_live, workload):
        existing = small_live.video_ids[0]
        with pytest.raises(ValueError, match="already indexed"):
            small_live.ingest_video(workload.dataset.records[existing])

    def test_retire_unknown_rejected(self, small_live):
        with pytest.raises(KeyError, match="unknown video"):
            small_live.retire_video("nope")

    def test_comments_for_unknown_video_rejected(self, small_live):
        with pytest.raises(KeyError, match="unknown video"):
            small_live.apply_comments([("someone", "nope")])

    def test_clip_ingest_path(self, small_live, workload):
        new_id = spare_masters(small_live, workload.dataset)[-2]
        clip = workload.dataset.clip(new_id)
        small_live.ingest_video(clip, owner="uploader", users=["fan_a", "fan_b"])
        assert new_id in small_live.series
        members = small_live.descriptor(new_id).users
        assert {"uploader", "fan_a", "fan_b"} <= members

    def test_incremental_mode_returns_stats(self, small_live):
        video_id = small_live.video_ids[0]
        stats = small_live.apply_comments(
            [("fresh_user", video_id)], incremental=True
        )
        assert stats is not None
        assert "fresh_user" in small_live.descriptor(video_id).users

    def test_knn_memo_invalidates_on_mutation(self, small_live):
        knn = KTopScoreVideoSearch(small_live)
        query = small_live.video_ids[0]
        knn.search(query, top_k=5)
        # Pull a whole sub-community's worth of new users onto one video so
        # the partition genuinely changes under the memoized components.
        target = small_live.video_ids[-1]
        small_live.apply_comments(
            [(f"brigade_{i}", target) for i in range(6)]
        )
        stale_checked = knn.search(query, top_k=5)
        fresh = KTopScoreVideoSearch(small_live).search(query, top_k=5)
        assert stale_checked == fresh

    def test_revisions_monotonic_over_random_ops(self, small_live, workload):
        rng = np.random.default_rng(7)
        seen = [small_live.revisions]
        spare = spare_masters(small_live, workload.dataset)
        for step in range(6):
            op = int(rng.integers(3))
            if op == 0 and spare:
                small_live.ingest_video(workload.dataset.records[spare.pop()])
            elif op == 1 and len(small_live.video_ids) > 2:
                small_live.retire_video(small_live.video_ids[-1])
            else:
                small_live.apply_comments(
                    [(f"u{step}", small_live.video_ids[0])]
                )
            seen.append(small_live.revisions)
        for before, after in zip(seen, seen[1:]):
            assert after[0] >= before[0]
            assert after[1] >= before[1]
            assert after != before
