"""Crash-injection matrix: every registered crash point x every mutation.

The model under test: a process applies one mutation under the WAL, then
checkpoints with ``save_index``; a fault kills it at one registered crash
point.  Recovery (``recover`` on whatever the crash left on disk) plus a
client retry of any never-acknowledged mutation must produce top-k
recommendations and component scores identical to the uninterrupted run,
for every social mode and both scoring engines.

On a parity failure the offending snapshot/WAL pair is preserved to
``$CRASH_ARTIFACT_DIR`` (the CI crash-recovery job uploads it).
"""

import os
import shutil

import pytest

from repro.community import CommunityConfig, generate_community
from repro.core import FusionRecommender, LiveCommunityIndex, RecommenderConfig
from repro.core.recommender import ENGINES, SOCIAL_MODES
from repro.errors import SnapshotCorruptionError
from repro.io import WriteAheadLog, load_index, recover, save_index
from repro.testing import (
    ByteCorruption,
    FaultPlan,
    InjectedCrashError,
    registered_crash_points,
)

MUTATIONS = ("ingest", "retire", "apply_comments")

# Only the storage-layer points can fire during a WAL'd mutation +
# checkpoint; the serve.* points (registered as a collection side effect
# of the gateway tests) are exercised by tests/test_serving_gateway.py.
STORAGE_POINTS = tuple(
    point
    for point in registered_crash_points()
    if point.startswith(("wal.", "snapshot."))
)


@pytest.fixture(scope="module")
def community():
    """Base state: a tiny live community with one video held out for ingest."""
    dataset = generate_community(CommunityConfig(hours=1.0, seed=7))
    held_out = sorted(dataset.records)[-1]
    initial = sorted(set(dataset.records) - {held_out})
    live = LiveCommunityIndex(dataset.subset(initial), RecommenderConfig(k=6))
    live.dataset.comments = list(dataset.comments)
    return live, dataset.records[held_out]


@pytest.fixture(scope="module")
def base_snapshot(community, tmp_path_factory):
    path = tmp_path_factory.mktemp("faults") / "base.json.gz"
    save_index(community[0], path)
    return path


def apply_mutation(index, mutation, held_out_record):
    if mutation == "ingest":
        index.ingest_video(held_out_record)
    elif mutation == "retire":
        index.retire_video(index.video_ids[-1])
    else:
        target = index.video_ids[0]
        index.apply_comments([("crash_user_a", target), ("crash_user_b", target)])


def fingerprint(index):
    """Top-k + component scores under every social mode x engine combo."""
    query = index.video_ids[0]
    result = {}
    for social_mode in SOCIAL_MODES:
        for engine in ENGINES:
            recommender = FusionRecommender(
                index, omega=0.7, social_mode=social_mode, engine=engine
            )
            result[(social_mode, engine)] = (
                list(recommender.recommend(query, 5)),
                recommender.component_scores(query),
            )
    return result


@pytest.fixture(scope="module")
def references(community, base_snapshot):
    """Uninterrupted-run fingerprints, one per mutation."""
    _, held_out_record = community
    result = {}
    for mutation in MUTATIONS:
        reference = load_index(base_snapshot)
        apply_mutation(reference, mutation, held_out_record)
        result[mutation] = fingerprint(reference)
    return result


def preserve_artifacts(snapshot, wal_path, label):
    artifact_dir = os.environ.get("CRASH_ARTIFACT_DIR")
    if not artifact_dir:
        return
    target = os.path.join(artifact_dir, label)
    os.makedirs(target, exist_ok=True)
    shutil.copy(snapshot, target)
    if os.path.exists(wal_path):
        shutil.copy(wal_path, target)


@pytest.mark.parametrize("crash_point", STORAGE_POINTS)
@pytest.mark.parametrize("mutation", MUTATIONS)
def test_crash_then_recover_matches_uninterrupted(
    crash_point, mutation, community, base_snapshot, references, tmp_path
):
    _, held_out_record = community
    snapshot = tmp_path / "snap.json.gz"
    wal_path = tmp_path / "log.jsonl"
    shutil.copy(base_snapshot, snapshot)
    plan = FaultPlan(abort_at=frozenset({crash_point}))

    # The doomed process: mutate under the WAL, then checkpoint.
    crashed = False
    index = load_index(snapshot)
    wal = WriteAheadLog(wal_path, faults=plan)
    try:
        index.attach_wal(wal)
        apply_mutation(index, mutation, held_out_record)
        save_index(index, snapshot, faults=plan)
    except InjectedCrashError:
        crashed = True
    finally:
        wal.close()
    assert crashed, f"{crash_point} never fired"
    assert crash_point in plan.fired

    # Recovery, then a client retry of any never-acknowledged mutation (a
    # crash before the WAL record became durable means the caller never
    # got an acknowledgement and re-submits).
    recovered = recover(snapshot, wal_path)
    if recovered.wal_seq < 1:
        apply_mutation(recovered, mutation, held_out_record)

    try:
        assert fingerprint(recovered) == references[mutation]
    except AssertionError:
        preserve_artifacts(snapshot, wal_path, f"{mutation}-{crash_point}")
        raise


class TestFaultPrimitives:
    def test_unregistered_point_refused(self):
        with pytest.raises(RuntimeError, match="unregistered crash point"):
            FaultPlan(abort_at=frozenset({"bogus.point"})).fire("bogus.point")

    def test_corruption_fault_is_caught_at_load(self, community, tmp_path):
        live, _ = community
        path = tmp_path / "snap.json.gz"
        save_index(live, path)
        plan = FaultPlan(corrupt_at={"snapshot.after_replace": ByteCorruption()})
        save_index(live, path, faults=plan)
        assert "snapshot.after_replace" in plan.fired
        with pytest.raises(SnapshotCorruptionError):
            load_index(path)

    def test_slow_io_fires_and_proceeds(self, community, tmp_path):
        live, _ = community
        path = tmp_path / "snap.json.gz"
        plan = FaultPlan(slow_at={"snapshot.before_write": 0.01})
        save_index(live, path, faults=plan)
        assert "snapshot.before_write" in plan.fired
        assert load_index(path).video_ids == live.video_ids

    def test_crash_during_save_keeps_previous_snapshot(self, community, tmp_path):
        live, _ = community
        path = tmp_path / "snap.json.gz"
        save_index(live, path)
        before = path.read_bytes()
        for point in ("snapshot.before_write", "snapshot.torn_write", "snapshot.before_replace"):
            with pytest.raises(InjectedCrashError):
                save_index(live, path, faults=FaultPlan(abort_at=frozenset({point})))
            assert path.read_bytes() == before
            assert load_index(path).video_ids == live.video_ids
