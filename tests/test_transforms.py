"""Unit tests for near-duplicate editing transforms."""

import numpy as np
import pytest

from repro.video import synthesize_clip
from repro.video.transforms import (
    DEFAULT_TRANSFORMS,
    add_noise,
    adjust_brightness,
    adjust_contrast,
    crop_and_rescale,
    derive_variant,
    frame_drop,
    frame_insert,
    letterbox,
    random_edit_chain,
    shuffle_shots_noop_safe,
    temporal_crop,
)


@pytest.fixture()
def clip(rng):
    return synthesize_clip("master", topic=0, rng=rng, num_shots=2, frames_per_shot=(8, 12))


class TestIndividualTransforms:
    def test_brightness_preserves_shape(self, clip, rng):
        out = adjust_brightness(clip, rng)
        assert out.frames.shape == clip.frames.shape
        assert out.lineage == "master"

    def test_brightness_shifts_mean(self, clip):
        rng = np.random.default_rng(42)
        out = adjust_brightness(clip, rng)
        assert abs(float(out.frames.mean()) - float(clip.frames.mean())) > 0.5

    def test_contrast_preserves_shape(self, clip, rng):
        assert adjust_contrast(clip, rng).frames.shape == clip.frames.shape

    def test_noise_changes_pixels(self, clip, rng):
        out = add_noise(clip, rng)
        assert not np.array_equal(out.frames, clip.frames)

    def test_crop_keeps_resolution(self, clip, rng):
        out = crop_and_rescale(clip, rng)
        assert out.frames.shape == clip.frames.shape

    def test_letterbox_zeroes_bands(self, clip, rng):
        out = letterbox(clip, rng)
        assert np.all(out.frames[:, 0, :] == 0.0)
        assert np.all(out.frames[:, -1, :] == 0.0)

    def test_temporal_crop_keeps_at_least_half(self, clip, rng):
        out = temporal_crop(clip, rng)
        assert out.num_frames >= clip.num_frames // 2
        assert out.num_frames <= clip.num_frames

    def test_frame_drop_never_empties_clip(self, clip, rng):
        out = frame_drop(clip, rng)
        assert out.num_frames >= 2

    def test_frame_insert_grows_clip(self, clip, rng):
        out = frame_insert(clip, rng)
        assert out.num_frames > clip.num_frames

    def test_reorder_preserves_frame_multiset(self, clip, rng):
        out = shuffle_shots_noop_safe(clip, rng)
        assert out.num_frames == clip.num_frames
        assert float(out.frames.sum()) == pytest.approx(float(clip.frames.sum()), rel=1e-5)

    def test_transforms_do_not_mutate_input(self, clip, rng):
        original = clip.frames.copy()
        for transform in DEFAULT_TRANSFORMS:
            transform(clip, rng)
        assert np.array_equal(clip.frames, original)


class TestEditChains:
    def test_chain_length_bounds(self, rng):
        for _ in range(20):
            chain = random_edit_chain(rng, min_ops=1, max_ops=3)
            assert 1 <= len(chain) <= 3

    def test_chain_has_distinct_operations(self, rng):
        chain = random_edit_chain(rng, min_ops=3, max_ops=3)
        assert len(set(chain)) == 3

    def test_invalid_bounds(self, rng):
        with pytest.raises(ValueError, match="op-count"):
            random_edit_chain(rng, min_ops=0, max_ops=2)


class TestDeriveVariant:
    def test_variant_identity_and_lineage(self, clip, rng):
        variant = derive_variant(clip, "variant1", rng)
        assert variant.video_id == "variant1"
        assert variant.lineage == "master"
        assert variant.topic == clip.topic

    def test_variant_of_variant_roots_to_original(self, clip, rng):
        first = derive_variant(clip, "var1", rng)
        second = derive_variant(first, "var2", rng)
        assert second.lineage == "master"

    def test_explicit_chain(self, clip, rng):
        variant = derive_variant(clip, "v", rng, chain=[adjust_brightness])
        assert variant.frames.shape == clip.frames.shape

    def test_deterministic_given_seed(self, clip):
        a = derive_variant(clip, "v", np.random.default_rng(7))
        b = derive_variant(clip, "v", np.random.default_rng(7))
        assert np.array_equal(a.frames, b.frames)
