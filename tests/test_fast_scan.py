"""Parity and bound tests for the sub-millisecond fused-scan hot path.

The optimized read path (float32 packed signature banks, segment-CDF
pruning bounds, position-addressed kernels, the gateway's epoch-keyed
query memo) must return the *same top-k ids* as the float64 pre-
optimization batch engine — bit-identical ranking, scores within
float32 tolerance — across every knob combination.  DESIGN §12 states
the contracts; this file pins them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.community import build_workload
from repro.community.models import CommunityDataset
from repro.core import CommunityIndex, LiveCommunityIndex, RecommenderConfig
from repro.core.knn import KTopScoreVideoSearch
from repro.core.recommender import FusionRecommender
from repro.core.stores import ContentStore, SocialStore
from repro.emd.one_dim import emd_1d, pack_emd_keys
from repro.measures.content import kappa_j
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serving import GatewayConfig, ServingGateway
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor

TOP_K = 8

#: The engine exactly as it stood before the hot-path work: float64
#: kernels, no pruning, legacy id-addressed scan.
ORACLE = {"fast_scan": False, "scan_dtype": "float64", "prune": False}


def build_synthetic_index(
    num_videos: int = 72, seed: int = 11, duplicates: int = 3
) -> CommunityIndex:
    """A compact content+social index with deliberate exact ties.

    The last *duplicates* videos are byte-for-byte clones of the first
    ones (same signatures, same fans), so their fused scores tie exactly
    and the ranking exercises the id tie-break at pruning boundaries.
    """
    rng = np.random.default_rng(seed)
    config = RecommenderConfig(k=12)
    content = ContentStore(config, build_lsb=False, build_global_features=False)
    num_users = 60
    users = [f"u{j:04d}" for j in range(num_users)]
    descriptors = {}
    series_by_vid = {}
    for i in range(num_videos):
        vid = f"v{i:05d}"
        if i >= num_videos - duplicates:
            clone_of = f"v{i - (num_videos - duplicates):05d}"
            series = SignatureSeries(
                video_id=vid, signatures=series_by_vid[clone_of].signatures
            )
            fans = descriptors[clone_of].users
            descriptors[vid] = SocialDescriptor.from_users(vid, fans)
        else:
            sigs = []
            for _ in range(int(rng.integers(2, 7))):
                ncub = int(rng.integers(3, 16))
                sigs.append(
                    CuboidSignature(
                        values=rng.normal(0.0, 6.0, ncub),
                        weights=rng.random(ncub) + 0.05,
                    )
                )
            series = SignatureSeries(video_id=vid, signatures=tuple(sigs))
            fans = [users[f] for f in rng.choice(num_users, size=4, replace=False)]
            descriptors[vid] = SocialDescriptor.from_users(vid, fans)
        series_by_vid[vid] = series
        content.add_series(vid, series)
    social = SocialStore(descriptors, k=config.k)
    dataset = CommunityDataset(records={}, users={}, comments=[], topics=())
    return CommunityIndex._from_parts(dataset, config, content, social)


@pytest.fixture(scope="module")
def index():
    idx = build_synthetic_index()
    idx.sar_matrix("sar")
    idx.sar_matrix("sar-h")
    idx.signature_bank().fast_pack()
    return idx


@pytest.fixture(scope="module")
def queries(index):
    return list(index.video_ids[::9][:8])


def _rankings(index, queries, omega, social_mode, content_measure, **kwargs):
    with FusionRecommender(
        index,
        omega=omega,
        social_mode=social_mode,
        content_measure=content_measure,
        engine="batch",
        **kwargs,
    ) as rec:
        out = []
        for q in queries:
            ranked = rec.recommend(q, TOP_K)
            out.append((list(ranked), list(getattr(ranked, "scores", []) or [])))
    return out


class TestParityMatrix:
    """Fast-path knobs x fusion modes vs the float64 oracle."""

    @pytest.mark.parametrize("social_mode", ["sar", "sar-h"])
    @pytest.mark.parametrize("omega", [0.0, 0.6, 1.0])
    @pytest.mark.parametrize(
        "knobs",
        [
            {"prune": True, "scan_dtype": "float32"},
            {"prune": False, "scan_dtype": "float32"},
            {"prune": True, "scan_dtype": "float64"},
            {"prune": False, "scan_dtype": "float64"},
        ],
        ids=["prune+f32", "f32", "prune+f64", "f64"],
    )
    def test_topk_ids_bit_identical(self, index, queries, social_mode, omega, knobs):
        oracle = _rankings(index, queries, omega, social_mode, "kj", **ORACLE)
        fast = _rankings(index, queries, omega, social_mode, "kj", **knobs)
        for (oracle_ids, oracle_scores), (fast_ids, fast_scores) in zip(oracle, fast):
            assert fast_ids == oracle_ids
            if oracle_scores and fast_scores:
                np.testing.assert_allclose(
                    fast_scores, oracle_scores, rtol=1e-5, atol=1e-6
                )

    @pytest.mark.parametrize("social_mode", ["exact", "naive"])
    def test_non_array_social_modes_fall_back_with_parity(
        self, index, queries, social_mode
    ):
        # These modes have no SAR matrix, so the fast scan must route to
        # the legacy path — same results, no crash.
        oracle = _rankings(index, queries[:3], 0.5, social_mode, "kj", **ORACLE)
        fast = _rankings(index, queries[:3], 0.5, social_mode, "kj")
        assert [ids for ids, _ in fast] == [ids for ids, _ in oracle]

    @pytest.mark.parametrize("content_measure", ["erp", "dtw"])
    def test_non_kj_measures_fall_back_with_parity(
        self, index, queries, content_measure
    ):
        oracle = _rankings(index, queries[:2], 0.5, "sar-h", content_measure, **ORACLE)
        fast = _rankings(index, queries[:2], 0.5, "sar-h", content_measure)
        assert [ids for ids, _ in fast] == [ids for ids, _ in oracle]

    def test_duplicate_videos_tie_break_by_id(self, index, queries):
        # A query that IS one of the duplicated videos scores its clone
        # at the exact same fused score as any other tied pair; the
        # ranking must break such ties by ascending id, identically in
        # the pruned float32 path and the oracle.
        clones = [list(index.video_ids)[0], list(index.video_ids)[-1]]
        for query in clones:
            oracle = _rankings(index, [query], 0.6, "sar-h", "kj", **ORACLE)
            fast = _rankings(index, [query], 0.6, "sar-h", "kj")
            assert fast[0][0] == oracle[0][0]

    def test_fast_scan_flag_forces_legacy(self, index):
        with FusionRecommender(index, engine="batch", fast_scan=False) as rec:
            assert not rec._fast_scan_applicable(0.5)
        with FusionRecommender(index, engine="batch") as rec:
            assert rec._fast_scan_applicable(0.5)

    def test_pruning_skips_candidates_and_keeps_ranking(self, index, queries):
        registry = MetricsRegistry()
        with use_metrics(registry), FusionRecommender(
            index, omega=0.6, engine="batch", prune=True
        ) as rec:
            pruned_results = [list(rec.recommend(q, TOP_K)) for q in queries]
        counters = registry.snapshot()["counters"]
        assert counters.get("repro_candidates_pruned_total", 0) > 0
        oracle = _rankings(index, queries, 0.6, "sar-h", "kj", **ORACLE)
        assert pruned_results == [ids for ids, _ in oracle]


class TestSegmentBound:
    """The pruning bound must actually be a bound (DESIGN §12)."""

    def test_segment_lower_bound_never_exceeds_emd(self, index):
        pack = index.signature_bank().fast_pack()
        bank = index.signature_bank()
        rows = bank.values.shape[0]
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, rows, size=(60, 2))
        for a, b in pairs:
            lower = float(np.abs(pack.seg_integrals[a] - pack.seg_integrals[b]).sum())
            true = emd_1d(
                bank.values[a].astype(np.float64),
                bank.weights[a].astype(np.float64),
                bank.values[b].astype(np.float64),
                bank.weights[b].astype(np.float64),
            )
            # 1e-3 is the slack the scan subtracts before inverting the
            # bound into a SimC ceiling; float32 integral rounding must
            # stay far inside it.
            assert lower <= true + 1e-3

    def test_kappa_cap_dominates_true_score(self, index, queries):
        # Replicate the scan's per-candidate cap and check it clears the
        # oracle's content score for every candidate, not just top-k.
        threshold = index.config.match_threshold
        pack = index.signature_bank().fast_pack()
        for query in queries[:4]:
            with FusionRecommender(index, omega=0.0, engine="batch", **ORACLE) as rec:
                components = rec.component_scores(query)
            pos = pack.index_of[query]
            rows = slice(int(pack.starts[pos]), int(pack.starts[pos]) + int(pack.counts[pos]))
            lower = np.abs(
                pack.seg_integrals[rows][:, None, :] - pack.seg_integrals[None, :, :]
            ).sum(axis=2)
            n1 = rows.stop - rows.start
            best_lower = np.minimum.reduceat(lower, pack.starts, axis=1)
            best = 1.0 / (1.0 + np.maximum(best_lower - 1e-3, 0.0))
            cut = 1.0 / threshold - 1.0 + 1e-3 if threshold > 0 else np.inf
            best[best_lower > cut] = 0.0
            sig_edges = (best > 0.0).sum(axis=0)
            matched_cap = np.minimum(sig_edges, pack.counts)
            total_cap = np.minimum(best.sum(axis=0), matched_cap)
            caps = np.minimum(
                (total_cap / (n1 + pack.counts - matched_cap)) * (1.0 + 2e-6), 1.0
            )
            for vid, (content, _social) in components.items():
                assert caps[pack.index_of[vid]] >= content - 1e-9, vid


class TestKeyEncoding:
    """The offset-positive int64 merge-key encoding."""

    def test_offset_must_lie_below_all_values(self):
        with pytest.raises(ValueError, match="offset"):
            pack_emd_keys(
                np.array([1.0, 2.0]), np.array([0.5, 0.5]), offset=1.5
            )

    def test_query_keys_at_matches_fresh_packing(self, index):
        pack = index.signature_bank().fast_pack()
        bank = index.signature_bank()
        threshold = index.config.match_threshold
        positions = np.arange(min(16, len(pack.ids)))
        for vid in list(index.video_ids)[:4]:
            pos = pack.index_of[vid]
            keys, _rows = pack.query_keys_at(pos)
            via_slices = bank.kappa_j_scores_at(keys, positions, threshold, pack=pack)
            fresh_keys = pack.pack_query(index.series[vid])[0]
            via_fresh = bank.kappa_j_scores_at(
                fresh_keys, positions, threshold, pack=pack
            )
            np.testing.assert_allclose(via_slices, via_fresh, rtol=1e-5, atol=1e-7)

    def test_float32_kappa_matches_scalar_reference(self, index):
        bank = index.signature_bank()
        threshold = index.config.match_threshold
        vids = list(index.video_ids)[:10]
        query = index.series[vids[0]]
        fast = bank.kappa_j_scores(query, vids, threshold, dtype="float32")
        for vid, score in zip(vids, fast):
            scalar = kappa_j(query, index.series[vid], match_threshold=threshold)
            assert score == pytest.approx(scalar, rel=1e-5, abs=1e-6)


class TestSocialGuard:
    def test_unknown_candidate_raises_instead_of_mismapping(self, index):
        # np.searchsorted returns an insertion point for absent ids; the
        # guard must turn that into a KeyError, never a wrong row.
        with FusionRecommender(index, engine="batch") as rec:
            query = list(index.video_ids)[0]
            with pytest.raises(KeyError, match="zzz-missing"):
                rec._social_scores_batch(query, ["zzz-missing"])

    def test_present_candidates_map_to_their_own_rows(self, index):
        with FusionRecommender(index, engine="batch") as rec:
            query = list(index.video_ids)[0]
            candidates = list(index.video_ids)[1:5]
            batch = rec._social_scores_batch(query, candidates)
            scalar = rec._social_scores_scalar(query, candidates)
            np.testing.assert_allclose(batch, scalar, rtol=1e-9)


class TestKnnFastPath:
    @pytest.fixture(scope="class")
    def knn_index(self):
        workload = build_workload(hours=4.0, seed=7)
        return CommunityIndex(
            workload.dataset,
            RecommenderConfig(),
            build_lsb=True,
            build_global_features=False,
        )

    def test_prune_parity(self, knn_index):
        query = list(knn_index.video_ids)[0]
        pruned = KTopScoreVideoSearch(knn_index, prune=True).search(query, top_k=6)
        exhaustive = KTopScoreVideoSearch(knn_index, prune=False).search(query, top_k=6)
        assert [r.video_id for r in pruned] == [r.video_id for r in exhaustive]

    def test_multi_probe_shrinks_candidates(self, knn_index):
        query = list(knn_index.video_ids)[0]
        narrow = KTopScoreVideoSearch(knn_index, probes=1)
        full = KTopScoreVideoSearch(knn_index)
        assert len(narrow._content_candidates(query)) <= len(
            full._content_candidates(query)
        )
        narrow.search(query, top_k=6)  # must still serve a ranking

    def test_probes_validated(self, knn_index):
        with pytest.raises(ValueError, match="probes"):
            KTopScoreVideoSearch(knn_index, probes=0)


class TestServingMemo:
    @pytest.fixture()
    def gateway_env(self):
        workload = build_workload(hours=4.0, seed=7)
        live = LiveCommunityIndex(workload.dataset, RecommenderConfig())
        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = ServingGateway(
                live, config=GatewayConfig(default_deadline=None, memo_capacity=4)
            )
            yield gateway, registry, live

    def _counter(self, registry, name):
        return registry.snapshot()["counters"].get(name, 0)

    def test_repeat_query_hits_and_matches(self, gateway_env):
        gateway, registry, live = gateway_env
        query = list(live.video_ids)[0]
        first = gateway.recommend(query, 5)
        assert self._counter(registry, "repro_serving_memo_miss_total") == 1
        second = gateway.recommend(query, 5)
        assert self._counter(registry, "repro_serving_memo_hit_total") == 1
        assert list(second) == list(first)
        assert second.epoch_id == first.epoch_id

    def test_key_includes_topk_and_epoch(self, gateway_env):
        gateway, registry, live = gateway_env
        query = list(live.video_ids)[0]
        gateway.recommend(query, 5)
        gateway.recommend(query, 7)  # different top_k: a distinct entry
        assert self._counter(registry, "repro_serving_memo_miss_total") == 2
        # Epoch publication invalidates everything memoized before it.
        retired = next(
            vid for vid in reversed(list(live.video_ids)) if vid != query
        )
        gateway.retire_video(retired)
        result = gateway.recommend(query, 5)
        assert self._counter(registry, "repro_serving_memo_miss_total") == 3
        assert retired not in list(result)

    def test_lru_eviction_is_bounded_and_counted(self, gateway_env):
        gateway, registry, live = gateway_env
        for vid in list(live.video_ids)[:6]:
            gateway.recommend(vid, 5)
        assert self._counter(registry, "repro_serving_memo_evict_total") >= 2
        # The most recent entries still hit.
        recent = list(live.video_ids)[5]
        gateway.recommend(recent, 5)
        assert self._counter(registry, "repro_serving_memo_hit_total") >= 1

    def test_memo_capacity_zero_disables(self):
        workload = build_workload(hours=4.0, seed=7)
        live = LiveCommunityIndex(workload.dataset, RecommenderConfig())
        registry = MetricsRegistry()
        with use_metrics(registry):
            gateway = ServingGateway(
                live, config=GatewayConfig(default_deadline=None, memo_capacity=0)
            )
            query = list(live.video_ids)[0]
            gateway.recommend(query, 5)
            gateway.recommend(query, 5)
        counters = registry.snapshot()["counters"]
        assert counters.get("repro_serving_memo_hit_total", 0) == 0
        assert counters.get("repro_serving_memo_miss_total", 0) == 2
