"""Parity tests for the batch scoring engine vs the scalar reference.

The batch engine must be a pure performance optimisation: for every
``social_mode`` × ``content_measure`` combination, rankings must be
identical and component scores must agree within 1e-9 on seeded
communities.  The underlying kernels (batched 1-D EMD, batched s̃J,
SignatureBank κJ) are additionally pinned against their scalar
counterparts directly.
"""

import numpy as np
import pytest

from repro.emd.one_dim import emd_1d, emd_1d_one_vs_many, pack_distributions
from repro.measures.content import SignatureBank, kappa_j, pairwise_sim_matrix
from repro.core.config import RecommenderConfig
from repro.core.knn import KTopScoreVideoSearch
from repro.core.pipeline import CommunityIndex
from repro.core.recommender import (
    CONTENT_MEASURES,
    SOCIAL_MODES,
    FusionRecommender,
)
from repro.social.sar import approx_jaccard, approx_jaccard_batch


def _random_distribution(rng, size):
    values = rng.normal(0.0, 20.0, size=size)
    weights = rng.uniform(0.1, 2.0, size=size)
    return values, weights


class TestBatchedEmd:
    def test_one_vs_many_matches_scalar_loop(self, rng):
        qv, qw = _random_distribution(rng, 7)
        sizes = [1, 2, 5, 9, 14, 3, 7]
        dists = [_random_distribution(rng, n) for n in sizes]
        packed = pack_distributions([v for v, _ in dists], [w for _, w in dists])
        batch = emd_1d_one_vs_many(qv, qw, packed.values, packed.weights)
        scalar = np.array([emd_1d(qv, qw, v, w) for v, w in dists])
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-12)

    def test_padding_is_inert(self, rng):
        # A distribution packed alone (no padding) and packed next to a
        # much longer one (heavy padding) must score identically.
        qv, qw = _random_distribution(rng, 5)
        v, w = _random_distribution(rng, 3)
        long_v, long_w = _random_distribution(rng, 20)
        alone = pack_distributions([v], [w])
        padded = pack_distributions([v, long_v], [w, long_w])
        first = emd_1d_one_vs_many(qv, qw, alone.values, alone.weights)[0]
        second = emd_1d_one_vs_many(qv, qw, padded.values, padded.weights)[0]
        assert first == second

    def test_pack_normalises_rows(self, rng):
        dists = [_random_distribution(rng, n) for n in (2, 6, 4)]
        packed = pack_distributions([v for v, _ in dists], [w for _, w in dists])
        np.testing.assert_allclose(packed.weights.sum(axis=1), 1.0)
        assert packed.lengths.tolist() == [2, 6, 4]

    def test_pack_rejects_empty(self):
        with pytest.raises(ValueError):
            pack_distributions([], [])
        with pytest.raises(ValueError):
            pack_distributions([np.array([])], [np.array([])])

    def test_shape_validation(self, rng):
        qv, qw = _random_distribution(rng, 4)
        with pytest.raises(ValueError, match="2-D"):
            emd_1d_one_vs_many(qv, qw, np.zeros(3), np.zeros(3))


class TestBatchedSimMatrix:
    def test_pairwise_sim_matrix_engines_agree(self, index, workload):
        first = index.series[workload.sources[0]]
        second = index.series[workload.sources[1]]
        scalar = pairwise_sim_matrix(first, second, engine="scalar")
        batch = pairwise_sim_matrix(first, second, engine="batch")
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-12)

    def test_signature_bank_matches_scalar_kappa(self, index):
        bank = index.signature_bank()
        ids = index.video_ids
        query = index.series[ids[0]]
        threshold = index.config.match_threshold
        scores = bank.kappa_j_scores(query, ids[:8], threshold)
        expected = [
            kappa_j(query, index.series[vid], match_threshold=threshold)
            for vid in ids[:8]
        ]
        np.testing.assert_allclose(scores, expected, rtol=0, atol=1e-9)

    def test_bank_subset_equals_full(self, index):
        bank = index.signature_bank()
        ids = index.video_ids
        query = index.series[ids[3]]
        threshold = index.config.match_threshold
        full = bank.kappa_j_scores(query, ids, threshold)
        subset = bank.kappa_j_scores(query, ids[5:9], threshold)
        np.testing.assert_allclose(subset, full[5:9], rtol=0, atol=1e-12)

    def test_bank_rejects_empty(self):
        with pytest.raises(ValueError):
            SignatureBank({})


class TestBatchedSar:
    def test_batch_matches_scalar_loop(self, rng):
        matrix = rng.integers(0, 8, size=(20, 12)).astype(np.float64)
        query = rng.integers(0, 8, size=12).astype(np.float64)
        batch = approx_jaccard_batch(query, matrix)
        scalar = [approx_jaccard(query, row) for row in matrix]
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-12)

    def test_zero_union_rows_score_zero(self):
        matrix = np.zeros((3, 4))
        query = np.zeros(4)
        assert approx_jaccard_batch(query, matrix).tolist() == [0.0, 0.0, 0.0]

    def test_shape_and_sign_validation(self):
        with pytest.raises(ValueError, match="matrix"):
            approx_jaccard_batch(np.ones(3), np.ones((2, 4)))
        with pytest.raises(ValueError, match="non-negative"):
            approx_jaccard_batch(-np.ones(3), np.ones((2, 3)))

    def test_index_sar_matrix_rows_match_vectorizer(self, index):
        for backend in ("sar", "sar-h"):
            matrix = index.sar_matrix(backend)
            assert matrix.shape == (len(index.video_ids), index.social.k)
            vectorizer = index.sar if backend == "sar" else index.sar_h
            probe = index.video_ids[4]
            np.testing.assert_array_equal(
                matrix[4], vectorizer.vectorize(index.descriptor(probe))
            )

    def test_sar_matrix_unknown_backend(self, index):
        with pytest.raises(ValueError, match="backend"):
            index.sar_matrix("exact")


@pytest.mark.parametrize("social_mode", SOCIAL_MODES)
@pytest.mark.parametrize("content_measure", tuple(CONTENT_MEASURES))
class TestEngineParity:
    """Batch and scalar engines agree for every mode combination."""

    def test_scores_and_rankings_identical(
        self, workload, index, social_mode, content_measure
    ):
        scalar = FusionRecommender(
            index,
            omega=0.5,
            social_mode=social_mode,
            content_measure=content_measure,
            engine="scalar",
        )
        batch = FusionRecommender(
            index,
            omega=0.5,
            social_mode=social_mode,
            content_measure=content_measure,
            engine="batch",
        )
        for query in workload.sources[:2]:
            scalar_components = scalar.component_scores(query)
            batch_components = batch.component_scores(query)
            assert scalar_components.keys() == batch_components.keys()
            for vid, (content_s, social_s) in scalar_components.items():
                content_b, social_b = batch_components[vid]
                assert content_b == pytest.approx(content_s, abs=1e-9)
                assert social_b == pytest.approx(social_s, abs=1e-9)
            assert scalar.recommend(query, 10) == batch.recommend(query, 10)


class TestEngineConfiguration:
    def test_default_engine_comes_from_config(self, index):
        assert FusionRecommender(index).engine == index.config.engine == "batch"

    def test_invalid_engine_rejected(self, index):
        with pytest.raises(ValueError, match="engine"):
            FusionRecommender(index, engine="gpu")

    def test_invalid_num_workers_rejected(self, index):
        with pytest.raises(ValueError, match="num_workers"):
            FusionRecommender(index, num_workers=-1)

    def test_workers_match_single_threaded(self, workload, index):
        single = FusionRecommender(index, engine="batch", num_workers=0)
        fanned = FusionRecommender(index, engine="batch", num_workers=2)
        query = workload.sources[0]
        assert single.recommend(query, 10) == fanned.recommend(query, 10)
        a = single.component_scores(query)
        b = fanned.component_scores(query)
        for vid in a:
            assert a[vid] == pytest.approx(b[vid], abs=1e-12)

    def test_precomputed_false_matches_precomputed(self, workload, index):
        pre = FusionRecommender(index, social_mode="sar-h", precomputed=True)
        live = FusionRecommender(index, social_mode="sar-h", precomputed=False)
        query = workload.sources[1]
        assert pre.recommend(query, 10) == live.recommend(query, 10)


class TestMaintenanceInvalidation:
    """The cached SAR matrices must track incremental social maintenance.

    SAR-H's hash table is maintained in place by ``maintain()``, so the
    scalar engine sees fresh sub-community labels immediately — before
    any ``rebuild_sorted_dictionary()`` call.  The batch engine's cached
    matrix must not lag behind.
    """

    @pytest.fixture()
    def mutable_index(self, workload):
        # The shared ``index`` fixture is session-scoped; build a private
        # one (no LSB / global features — social state is what we mutate).
        return CommunityIndex(
            workload.dataset,
            RecommenderConfig(k=12),
            build_lsb=False,
            build_global_features=False,
        )

    def test_parity_survives_maintenance_without_rebuild(
        self, workload, mutable_index
    ):
        index = mutable_index
        before = index.sar_matrix("sar-h")
        target = index.video_ids[0]
        existing = set(index.descriptor(target).users)
        mover = next(
            user
            for descriptor in index.social.descriptors.values()
            for user in descriptor.users
            if user not in existing
        )
        stats = index.social.apply_comments([(mover, target)])
        assert stats.connections >= 0  # maintenance ran
        after = index.sar_matrix("sar-h")
        assert after is not before  # revision bump invalidated the cache
        row = index.video_ids.index(target)
        np.testing.assert_array_equal(
            after[row], index.sar_h.vectorize(index.descriptor(target))
        )
        scalar = FusionRecommender(index, social_mode="sar-h", engine="scalar")
        batch = FusionRecommender(index, social_mode="sar-h", engine="batch")
        query = workload.sources[0]
        scalar_components = scalar.component_scores(query)
        batch_components = batch.component_scores(query)
        for vid, (content_s, social_s) in scalar_components.items():
            content_b, social_b = batch_components[vid]
            assert content_b == pytest.approx(content_s, abs=1e-9)
            assert social_b == pytest.approx(social_s, abs=1e-9)
        assert scalar.recommend(query, 10) == batch.recommend(query, 10)

    def test_revision_counts_maintenance_batches(self, mutable_index):
        social = mutable_index.social
        start = social.revision
        social.maintain([])
        social.maintain([])
        assert social.revision == start + 2


class TestKnnBatchRefinement:
    def test_memo_reused_across_searches(self, workload, index):
        search = KTopScoreVideoSearch(index)
        query = workload.sources[0]
        first = search.search(query, top_k=5)
        assert search._component_memo  # populated by the first search
        second = search.search(query, top_k=5)
        assert first == second
        search.clear_memo()
        assert not search._component_memo

    def test_block_size_one_matches_default(self, workload, index):
        query = workload.sources[2]
        default = KTopScoreVideoSearch(index).search(query, top_k=6)
        tiny_blocks = KTopScoreVideoSearch(index, block_size=1).search(query, top_k=6)
        assert default == tiny_blocks

    def test_invalid_block_size(self, index):
        with pytest.raises(ValueError, match="block_size"):
            KTopScoreVideoSearch(index, block_size=0)
