"""Tests for signature-series extraction."""

import numpy as np
import pytest

from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries, extract_signature_series
from repro.video import synthesize_clip
from repro.video.clip import VideoClip


def make_signature(value=0.0):
    return CuboidSignature(values=np.array([value]), weights=np.array([1.0]))


class TestSignatureSeries:
    def test_iteration_and_indexing(self):
        series = SignatureSeries("v", (make_signature(1.0), make_signature(2.0)))
        assert len(series) == 2
        assert series[1].values[0] == 2.0
        assert [s.values[0] for s in series] == [1.0, 2.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SignatureSeries("v", ())


class TestExtraction:
    def test_series_has_one_signature_per_qgram(self, rng):
        clip = synthesize_clip("v", 0, rng, num_shots=3, frames_per_shot=(8, 12))
        series = extract_signature_series(clip, keyframes_per_segment=3, q=2)
        # Each detected segment contributes keyframes - q + 1 = 2 q-grams.
        assert len(series) % 2 == 0
        assert len(series) >= 2

    def test_extraction_is_deterministic(self, rng):
        clip = synthesize_clip("v", 1, np.random.default_rng(4))
        a = extract_signature_series(clip)
        b = extract_signature_series(clip)
        for sig_a, sig_b in zip(a, b):
            assert np.array_equal(sig_a.values, sig_b.values)
            assert np.array_equal(sig_a.weights, sig_b.weights)

    def test_single_shot_clip_yields_series(self):
        frames = np.stack([np.full((16, 16), 100.0 + i, dtype=np.float32) for i in range(10)])
        clip = VideoClip("flat", frames)
        series = extract_signature_series(clip)
        assert len(series) >= 1
        assert series.video_id == "flat"

    def test_grid_controls_max_cuboids(self, rng):
        clip = synthesize_clip("v", 2, rng)
        series = extract_signature_series(clip, grid=4, merge_threshold=0.001)
        assert all(signature.size <= 16 for signature in series)
