"""Network chaos soak acceptance: exactly-once + bit-identical over HTTP.

One multi-process soak runs module-scoped — a real ``repro serve``
subprocess SIGTERMed mid-load and restarted on the same port, real
``repro load`` subprocesses, chaos slow/abort injection — and the tests
assert its invariants.  ``NETCHAOS_QUERIES`` scales the attempt count
(CI smoke uses a few hundred; the acceptance bar is the >= 10k run in
``benchmarks/bench_http_serving.py``).
"""

from __future__ import annotations

import os

import pytest

from repro.testing.netchaos import NetChaosConfig, run_net_soak

QUERIES = int(os.environ.get("NETCHAOS_QUERIES", "800"))


@pytest.fixture(scope="module")
def report():
    return run_net_soak(
        NetChaosConfig(
            queries=QUERIES,
            loadgens=2,
            concurrency=3,
            interact_every=5,
            apply_every=10,
            chaos_slow_every=50,
            chaos_slow_ms=5.0,
            chaos_abort_every=37,
        )
    )


class TestNetSoakInvariants:
    def test_overall_verdict(self, report):
        assert report.ok, vars(report)

    def test_every_attempt_accounted_for(self, report):
        # Every query a loadgen attempted produced exactly one row —
        # success, typed failure or connection error, never silence.
        assert report.attempted == QUERIES
        assert sum(report.by_status.values()) == QUERIES
        assert not report.loadgen_failures
        assert all(code == 0 for code in report.loadgen_exits)

    def test_zero_lost_interactions(self, report):
        # Every interaction a client saw a 200 for is durable in the log,
        # across the mid-soak SIGTERM drain and the restart.
        assert report.lost_acks == []
        assert report.interactions_acked > 0
        assert report.logged_records > 0

    def test_zero_duplicated_records(self, report):
        assert report.double_logged == []

    def test_clean_drain_and_restart(self, report):
        assert report.server_exits == [0, 0]
        assert report.restarts == 1
        # The drain fired while load was live, and the restarted server
        # replayed the durable log before serving.
        assert report.loadgens_alive_at_sigterm > 0
        assert report.served_at_sigterm > 0
        assert 0 < report.replayed_on_restart <= report.logged_records

    def test_every_200_oracle_verified(self, report):
        assert report.oracle_checked == report.recommend_ok - report.degraded_served
        assert report.oracle_failures == []
        assert report.oracle_checked > 0

    def test_no_internal_errors_on_the_wire(self, report):
        assert report.server_500s == 0
        assert "500" not in report.by_status
