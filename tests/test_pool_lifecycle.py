"""Worker-pool lifecycle: no leaked threads, revision-keyed retirement."""

import threading

import pytest

from repro.community import CommunityConfig, generate_community
from repro.core import FusionRecommender, LiveCommunityIndex, RecommenderConfig
from repro.evaluation import JudgePanel, evaluate_method


@pytest.fixture(scope="module")
def dataset():
    return generate_community(CommunityConfig(hours=2.0, seed=11))


@pytest.fixture(scope="module")
def live(dataset):
    return LiveCommunityIndex(dataset, RecommenderConfig(k=8))


class TestClose:
    def test_no_thread_growth_across_50_constructions(self, live):
        baseline = len(threading.enumerate())
        for _ in range(50):
            rec = FusionRecommender(live, num_workers=2)
            pool = rec._worker_pool()
            # Force the lazy executor to actually start its threads.
            assert list(pool.map(lambda x: x + 1, [1, 2])) == [2, 3]
            rec.close()
        # close() joins the workers, so the thread count cannot trend up;
        # allow a little slack for unrelated interpreter threads.
        assert len(threading.enumerate()) <= baseline + 2

    def test_close_shuts_down_pool(self, live):
        rec = FusionRecommender(live, num_workers=2)
        pool = rec._worker_pool()
        rec.close()
        assert rec._pool is None
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_close_is_idempotent(self, live):
        rec = FusionRecommender(live, num_workers=2)
        rec._worker_pool()
        rec.close()
        rec.close()  # must not raise
        assert rec._pool is None

    def test_close_without_pool_is_a_noop(self, live):
        FusionRecommender(live).close()

    def test_context_manager_closes(self, live):
        with FusionRecommender(live, num_workers=2) as rec:
            pool = rec._worker_pool()
            assert rec.recommend(live.video_ids[0], 5)
        assert rec._pool is None
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_recommend_usable_after_close(self, live):
        rec = FusionRecommender(live, num_workers=2)
        rec._worker_pool()
        rec.close()
        assert rec.recommend(live.video_ids[0], 5)
        rec.close()


class TestRevisionSwap:
    def test_pool_retired_when_index_revisions_move(self, dataset):
        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        rec = FusionRecommender(live, num_workers=2)
        first = rec._worker_pool()
        assert rec._worker_pool() is first  # stable while the index is
        live.retire_video(live.video_ids[-1])
        second = rec._worker_pool()
        assert second is not first
        assert first._shutdown
        assert rec._pool_revisions == live.revisions
        rec.close()

    def test_static_index_reuses_pool(self, live):
        rec = FusionRecommender(live, num_workers=2)
        assert rec._worker_pool() is rec._worker_pool()
        rec.close()


class TestHarnessIntegration:
    def test_evaluate_method_close_shuts_recommender(self, dataset, live):
        panel = JudgePanel(dataset, seed=5)
        rec = FusionRecommender(live, num_workers=2)
        rec._worker_pool()
        report = evaluate_method(
            "csf-sar-h", rec, live.video_ids[:2], panel, top_ks=(5,), close=True
        )
        assert report.rows
        assert rec._pool is None

    def test_evaluate_method_accepts_bound_method_with_close(self, dataset, live):
        panel = JudgePanel(dataset, seed=5)
        rec = FusionRecommender(live, num_workers=2)
        rec._worker_pool()
        evaluate_method(
            "csf-sar-h",
            rec.recommend,
            live.video_ids[:2],
            panel,
            top_ks=(5,),
            close=True,
        )
        assert rec._pool is None
