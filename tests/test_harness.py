"""Tests for the evaluation harness."""

import pytest

from repro.evaluation.harness import Timer, evaluate_method, format_table
from repro.evaluation.judges import JudgePanel


@pytest.fixture()
def panel(workload):
    return JudgePanel(workload.dataset, seed=5)


def perfect_recommender(dataset):
    """Recommends near-duplicates and same-topic videos first."""

    def recommend(query_id, top_k):
        ranked = sorted(
            (v for v in dataset.records if v != query_id),
            key=lambda v: (-dataset.relevance_grade(query_id, v), v),
        )
        return ranked[:top_k]

    return recommend


def hostile_recommender(dataset):
    """Recommends unrelated videos first."""

    def recommend(query_id, top_k):
        ranked = sorted(
            (v for v in dataset.records if v != query_id),
            key=lambda v: (dataset.relevance_grade(query_id, v), v),
        )
        return ranked[:top_k]

    return recommend


class TestEvaluateMethod:
    def test_rows_for_each_cutoff(self, workload, panel):
        report = evaluate_method(
            "perfect", perfect_recommender(workload.dataset), workload.sources, panel
        )
        assert {row.top_k for row in report.rows} == {5, 10, 20}
        assert report.row(5).method == "perfect"
        with pytest.raises(KeyError):
            report.row(7)

    def test_perfect_beats_hostile(self, workload, panel):
        good = evaluate_method(
            "good", perfect_recommender(workload.dataset), workload.sources, panel
        )
        bad = evaluate_method(
            "bad", hostile_recommender(workload.dataset), workload.sources, panel
        )
        for top_k in (5, 10, 20):
            assert good.row(top_k).ar > bad.row(top_k).ar
            assert good.row(top_k).map >= bad.row(top_k).map

    def test_query_excluded_from_own_list(self, workload, panel):
        seen_lists = {}

        def mixed(query_id, top_k):
            others = [v for v in sorted(workload.dataset.records) if v != query_id]
            result = [query_id, *others][:top_k]
            seen_lists[query_id] = result
            return result

        source = workload.sources[0]
        evaluate_method("mixed", mixed, [source], panel, top_ks=(5,))
        # The harness asked for one extra result to compensate for dropping
        # the query itself from the list it scores.
        assert source in seen_lists[source]
        assert len(seen_lists[source]) == 6

    def test_empty_sources_rejected(self, workload, panel):
        with pytest.raises(ValueError, match="at least one source"):
            evaluate_method("x", lambda q, k: [], [], panel)

    def test_timing_recorded(self, workload, panel):
        report = evaluate_method(
            "timed", perfect_recommender(workload.dataset), workload.sources[:2], panel
        )
        assert report.seconds >= 0.0


class TestFormatTable:
    def test_contains_methods_and_headers(self, workload, panel):
        report = evaluate_method(
            "mymethod", perfect_recommender(workload.dataset), workload.sources[:2], panel
        )
        table = format_table([report])
        assert "mymethod" in table
        assert "AR@5" in table
        assert "MAP@20" in table


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            sum(range(100_000))
        assert timer.seconds > 0.0


class TestObservability:
    def test_queries_recorded_into_registry(self, workload, panel):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        sources = workload.sources[:3]
        evaluate_method(
            "perfect",
            perfect_recommender(workload.dataset),
            sources,
            panel,
            registry=registry,
        )
        assert registry.value("repro_harness_queries_total") == len(sources)
        histogram = registry.snapshot()["histograms"]["repro_harness_query_seconds"]
        assert histogram["count"] == len(sources)

    def test_uses_process_registry_by_default(self, workload, panel):
        from repro.obs import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        with use_metrics(registry):
            evaluate_method(
                "perfect",
                perfect_recommender(workload.dataset),
                workload.sources[:2],
                panel,
            )
        assert registry.value("repro_harness_queries_total") == 2

    def test_close_called_even_when_recommender_raises(self, workload, panel):
        closed = []

        class Exploding:
            def recommend(self, query_id, top_k):
                raise RuntimeError("boom")

            def close(self):
                closed.append(True)

        with pytest.raises(RuntimeError, match="boom"):
            evaluate_method(
                "bad", Exploding(), workload.sources[:1], panel, close=True
            )
        assert closed == [True]
