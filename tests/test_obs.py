"""Tests for the observability subsystem: metrics, traces, determinism."""

import json
import pathlib

import pytest

from repro.community import CommunityConfig, generate_community
from repro.core import (
    FusionRecommender,
    LiveCommunityIndex,
    RecommenderConfig,
)
from repro.defense import init_defense_metrics
from repro.obs import (
    NULL_TRACE,
    MetricsRegistry,
    QueryTrace,
    get_metrics,
    parse_prometheus,
    percentiles,
    render_prometheus,
    set_metrics,
    use_metrics,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "metrics.prom"


class FakeClock:
    """Deterministic clock: every read advances by a fixed step."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def golden_scenario() -> MetricsRegistry:
    """The fixed recording sequence behind the golden exposition file."""
    registry = MetricsRegistry(clock=FakeClock(0.001))
    registry.inc("repro_queries_total", engine="batch")
    registry.inc("repro_queries_total", 2, engine="batch")
    registry.inc("repro_queries_total", engine="scalar")
    registry.inc("repro_wal_bytes_total", 512)
    registry.set_gauge("repro_index_videos", 24)
    registry.set_gauge("repro_social_available", 1)
    for value in (0.0002, 0.004, 0.004, 0.07, 3.0):
        registry.observe("repro_query_seconds", value)
    with registry.time("repro_stage_seconds", stage="content_scores"):
        pass
    # The defense family: zero-registered so an idle deployment still
    # exposes every series, then a few mechanisms fire.
    init_defense_metrics(registry)
    registry.inc("repro_defense_coalesce_leaders_total")
    registry.inc("repro_defense_coalesced_followers_total", 3)
    registry.inc("repro_defense_quarantined_comments_total", 2)
    registry.set_gauge("repro_defense_suspect_users", 1)
    return registry


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("hits_total")
        registry.inc("hits_total", 4)
        assert registry.value("hits_total") == 5

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.inc("queries_total", engine="batch")
        registry.inc("queries_total", engine="scalar")
        registry.inc("queries_total", engine="batch")
        assert registry.value("queries_total", engine="batch") == 2
        assert registry.value("queries_total", engine="scalar") == 1
        assert registry.value("queries_total", engine="missing") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="counter"):
            MetricsRegistry().inc("x_total", -1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("videos", 10)
        registry.set_gauge("videos", 7)
        assert registry.value("videos") == 7

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            registry.observe("lat", value)
        data = registry.snapshot()["histograms"]["lat"]
        assert data["buckets"] == {"0.01": 2, "0.1": 3, "1": 4, "+Inf": 5}
        assert data["count"] == 5
        assert data["sum"] == pytest.approx(5.56)

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a_total")
        registry.set_gauge("b", 1)
        registry.observe("c", 0.5)
        with registry.time("d"):
            pass
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_time_uses_injected_clock(self):
        registry = MetricsRegistry(clock=FakeClock(0.002))
        with registry.time("op_seconds"):
            pass
        data = registry.snapshot()["histograms"]["op_seconds"]
        assert data["sum"] == pytest.approx(0.002)
        assert data["buckets"]["0.0025"] == 1
        assert data["buckets"]["0.001"] == 0

    def test_reset_clears_series(self):
        registry = golden_scenario()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_global_registry_swap_and_scope(self):
        original = get_metrics()
        replacement = MetricsRegistry()
        with use_metrics(replacement) as active:
            assert get_metrics() is replacement is active
        assert get_metrics() is original
        previous = set_metrics(replacement)
        assert previous is original
        set_metrics(original)


class TestExposition:
    def test_round_trip_exactly(self):
        registry = golden_scenario()
        snapshot = registry.snapshot()
        assert parse_prometheus(registry.to_prometheus()) == snapshot

    def test_round_trip_survives_awkward_label_values(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", stage='quo"te', note="a,b=c")
        snapshot = registry.snapshot()
        assert parse_prometheus(render_prometheus(snapshot)) == snapshot

    def test_golden_file(self):
        # The exposition of a fixed scenario under an injected clock is
        # byte-stable; regenerate with
        # `python -c "from tests.test_obs import golden_scenario; ..."`
        # only when the format deliberately changes.
        assert golden_scenario().to_prometheus() == GOLDEN.read_text()

    def test_snapshot_is_json_ready(self):
        snapshot = golden_scenario().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
        assert parse_prometheus("") == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestPercentiles:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        result = percentiles(values, (50.0, 90.0, 99.0))
        assert result == {"p50": 50.0, "p90": 90.0, "p99": 99.0}

    def test_empty_is_zero(self):
        assert percentiles([], (50.0,)) == {"p50": 0.0}


class TestQueryTrace:
    def test_nesting_and_aggregation(self):
        trace = QueryTrace("root", clock=FakeClock(0.001))
        with trace:
            for _ in range(3):
                with trace.span("outer"):
                    with trace.span("inner"):
                        pass
        outer = trace.root.children["outer"]
        assert outer.count == 3
        assert list(outer.children) == ["inner"]
        assert outer.children["inner"].count == 3
        # Each outer entry reads the clock 4x (outer in/out + inner in/out).
        assert outer.seconds == pytest.approx(3 * 0.003)
        assert trace.total_seconds >= outer.seconds

    def test_stage_seconds_view(self):
        trace = QueryTrace(clock=FakeClock(0.001))
        with trace, trace.span("a"):
            pass
        assert set(trace.stage_seconds()) == {"a"}

    def test_format_tree_lists_stages_with_shares(self):
        trace = QueryTrace("recommend", clock=FakeClock(0.001))
        with trace:
            with trace.span("content_scores"):
                pass
        text = trace.format_tree()
        assert text.splitlines()[0].startswith("recommend")
        assert "content_scores" in text
        assert "%" in text and "ms" in text

    def test_as_dict_round_trips_json(self):
        trace = QueryTrace(clock=FakeClock(0.001))
        with trace, trace.span("a"):
            pass
        assert json.loads(json.dumps(trace.as_dict()))["name"] == "recommend"

    def test_null_trace_is_inert(self):
        with NULL_TRACE, NULL_TRACE.span("anything"):
            pass  # no state, no clock reads, no error


@pytest.fixture(scope="module")
def dataset():
    return generate_community(CommunityConfig(hours=2.0, seed=21))


def _instrumented_run(dataset, registry):
    """A fixed serve+ingest workload recorded into *registry*."""
    with use_metrics(registry):
        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        with FusionRecommender(live, omega=0.7, social_mode="sar-h") as rec:
            for query in live.video_ids[:3]:
                rec.recommend(query, 5)
        live.apply_comments(
            [(c.user_id, c.video_id) for c in dataset.comments[:20]],
            incremental=True,
        )
        live.retire_video(live.video_ids[-1])
        with FusionRecommender(live, omega=0.0) as rec:
            rec.recommend(live.video_ids[0], 5)
    return registry


class TestDeterminism:
    def test_identical_seeded_runs_identical_snapshots(self, dataset):
        first = _instrumented_run(dataset, MetricsRegistry(clock=FakeClock()))
        second = _instrumented_run(dataset, MetricsRegistry(clock=FakeClock()))
        assert first.snapshot() == second.snapshot()
        assert first.to_prometheus() == second.to_prometheus()

    def test_counters_reflect_workload(self, dataset):
        registry = _instrumented_run(dataset, MetricsRegistry(clock=FakeClock()))
        assert registry.value("repro_queries_total", engine="batch") == 4
        assert registry.value("repro_retire_total") == 1
        assert registry.value("repro_comment_batches_total") == 1
        assert registry.value("repro_comment_pairs_total") == 20
        assert registry.value("repro_social_maintenance_batches_total") >= 1
        snapshot = registry.snapshot()
        assert "repro_query_seconds" in snapshot["histograms"]
        assert snapshot["histograms"]["repro_query_seconds"]["count"] == 4

    def test_histogram_buckets_stable_under_injected_clock(self, dataset):
        registry = _instrumented_run(dataset, MetricsRegistry(clock=FakeClock()))
        data = registry.snapshot()["histograms"]["repro_query_seconds"]
        # Every fake-clocked query lasts a deterministic number of steps,
        # so the whole distribution lands in exact buckets.
        assert data["buckets"]["+Inf"] == data["count"] == 4
        assert data["sum"] == pytest.approx(
            _instrumented_run(dataset, MetricsRegistry(clock=FakeClock()))
            .snapshot()["histograms"]["repro_query_seconds"]["sum"]
        )


class TestRecommendTracing:
    def test_stage_durations_sum_close_to_total(self, dataset):
        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        with FusionRecommender(live, omega=0.7, social_mode="sar-h") as rec:
            best = 0.0
            for _ in range(3):  # retry headroom for loaded CI machines
                trace = QueryTrace("recommend")
                rec.recommend(live.video_ids[0], 5, trace=trace)
                covered = sum(
                    node.seconds for node in trace.root.children.values()
                )
                best = max(best, covered / trace.total_seconds)
                if best >= 0.9:
                    break
        assert best >= 0.9
        assert best <= 1.0 + 1e-9

    def test_trace_covers_the_expected_stages(self, dataset):
        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        trace = QueryTrace("recommend")
        with FusionRecommender(live, omega=0.7, social_mode="sar-h") as rec:
            rec.recommend(live.video_ids[0], 5, trace=trace)
        assert set(trace.stage_seconds()) == {
            "candidates",
            "content_scores",
            "social_scores",
            "fuse_topk",
        }

    def test_degraded_query_skips_social_stage(self, dataset):
        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        live.social_store.mark_unavailable("blip")
        trace = QueryTrace("recommend")
        with FusionRecommender(live, omega=0.7) as rec:
            results = rec.recommend(live.video_ids[0], 5, trace=trace)
        assert results.degraded
        assert "social_scores" not in trace.stage_seconds()

    def test_budgeted_scan_aggregates_chunks_into_one_stage_node(self, dataset):
        live = LiveCommunityIndex(dataset, RecommenderConfig(k=8))
        trace = QueryTrace("recommend")
        with FusionRecommender(
            live, omega=0.7, social_mode="sar-h", time_budget=120.0
        ) as rec:
            rec.recommend(live.video_ids[0], 5, trace=trace)
        content = trace.root.children["content_scores"]
        assert content.count >= 1  # one aggregated node, however many chunks
        assert set(trace.stage_seconds()) >= {"content_scores", "social_scores"}
