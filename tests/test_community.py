"""Tests for the community dataset model and generator."""

import numpy as np
import pytest

from repro.community.generator import QUERY_TOPICS, CommunityConfig, generate_community
from repro.community.models import SOURCE_MONTHS, TEST_MONTHS, VideoRecord
from repro.community.workload import build_workload, select_source_videos


@pytest.fixture(scope="module")
def dataset():
    return generate_community(CommunityConfig(hours=4.0, seed=21))


class TestConfig:
    def test_num_videos_scales_with_hours(self):
        assert CommunityConfig(hours=2.0, videos_per_hour=10).num_videos == 20

    def test_topic_names_start_with_queries(self):
        names = CommunityConfig().topic_names
        assert names[: len(QUERY_TOPICS)] == QUERY_TOPICS

    def test_num_topics(self):
        assert CommunityConfig(background_topics=2).num_topics == 7


class TestVideoRecord:
    def test_variant_requires_both_fields(self):
        with pytest.raises(ValueError, match="lineage"):
            VideoRecord(
                video_id="v", topic=0, seed=1, owner="u", title="t",
                tags=(), lineage="m", edit_seed=None,
            )


class TestGeneratedDataset:
    def test_video_count(self, dataset):
        assert dataset.num_videos == 48

    def test_every_topic_represented(self, dataset):
        topics = {record.topic for record in dataset.records.values()}
        assert topics == set(range(8))

    def test_variants_reference_existing_masters(self, dataset):
        for record in dataset.records.values():
            if record.lineage is not None:
                master = dataset.records[record.lineage]
                assert master.lineage is None
                assert master.topic == record.topic

    def test_owners_are_registered_users(self, dataset):
        for record in dataset.records.values():
            assert record.owner in dataset.users

    def test_comments_cover_both_windows(self, dataset):
        months = {comment.month for comment in dataset.comments}
        assert months & set(SOURCE_MONTHS)
        assert months & set(TEST_MONTHS)

    def test_commenters_are_registered(self, dataset):
        assert all(comment.user_id in dataset.users for comment in dataset.comments)

    def test_generation_is_deterministic(self):
        first = generate_community(CommunityConfig(hours=2.0, seed=5))
        second = generate_community(CommunityConfig(hours=2.0, seed=5))
        assert first.records.keys() == second.records.keys()
        assert first.comments == second.comments

    def test_different_seeds_differ(self):
        first = generate_community(CommunityConfig(hours=2.0, seed=5))
        second = generate_community(CommunityConfig(hours=2.0, seed=6))
        assert first.comments != second.comments


class TestClipMaterialisation:
    def test_clip_is_deterministic(self, dataset):
        video_id = sorted(dataset.records)[0]
        first = dataset.clip(video_id)
        second = dataset.clip(video_id)
        assert np.array_equal(first.frames, second.frames)

    def test_variant_clip_has_lineage(self, dataset):
        variant_ids = [v for v, r in dataset.records.items() if r.lineage]
        clip = dataset.clip(variant_ids[0])
        assert clip.lineage == dataset.records[variant_ids[0]].lineage

    def test_clip_uses_configured_shape(self, dataset):
        video_id = sorted(dataset.records)[0]
        clip = dataset.clip(video_id)
        assert clip.frame_shape == (32, 32)


class TestRelevanceGrades:
    def test_self_is_near_duplicate(self, dataset):
        video_id = sorted(dataset.records)[0]
        assert dataset.relevance_grade(video_id, video_id) == 2

    def test_variant_of_same_master_grades_two(self, dataset):
        by_master: dict[str, list[str]] = {}
        for video_id, record in dataset.records.items():
            if record.lineage:
                by_master.setdefault(record.lineage, []).append(video_id)
        master, variants = next(iter(by_master.items()))
        assert dataset.relevance_grade(master, variants[0]) == 2

    def test_same_topic_grades_one(self, dataset):
        by_topic: dict[int, list[str]] = {}
        for video_id, record in dataset.records.items():
            if record.lineage is None:
                by_topic.setdefault(record.topic, []).append(video_id)
        videos = next(v for v in by_topic.values() if len(v) >= 2)
        assert dataset.relevance_grade(videos[0], videos[1]) == 1

    def test_cross_topic_grades_zero(self, dataset):
        by_topic: dict[int, str] = {}
        for video_id, record in dataset.records.items():
            by_topic.setdefault(record.topic, video_id)
        topics = sorted(by_topic)
        assert dataset.relevance_grade(by_topic[topics[0]], by_topic[topics[1]]) == 0


class TestDescriptors:
    def test_owner_always_included(self, dataset):
        descriptors = dataset.descriptors(up_to_month=-1)  # before any comment
        for video_id, descriptor in descriptors.items():
            assert dataset.records[video_id].owner in descriptor.users

    def test_descriptors_grow_with_time(self, dataset):
        early = dataset.descriptors(up_to_month=2)
        late = dataset.descriptors(up_to_month=15)
        assert sum(map(len, late.values())) > sum(map(len, early.values()))


class TestWorkload:
    def test_ten_sources_two_per_query(self, dataset):
        sources = select_source_videos(dataset, per_query=2)
        assert len(sources) == 10
        topics = [dataset.records[source].topic for source in sources]
        assert topics == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]

    def test_sources_are_most_commented(self, dataset):
        sources = select_source_videos(dataset, per_query=1)
        counts = dataset.comment_counts(up_to_month=11)
        for source in sources:
            topic = dataset.records[source].topic
            peers = dataset.videos_of_topic(topic)
            assert counts[source] == max(counts[p] for p in peers)

    def test_build_workload_end_to_end(self):
        workload = build_workload(hours=2.0, seed=9)
        assert len(workload.sources) == 10
        assert workload.queries == QUERY_TOPICS
