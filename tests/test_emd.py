"""Tests for the EMD solvers: closed form, simplex, and LP cross-checks.

The property tests are the heart of this module: on random weighted scalar
distributions all three solvers must agree, and EMD must behave like a
metric on normalised distributions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emd import emd_1d, emd_exact, emd_linprog, normalize_weights

distribution = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=n, max_size=n,
        ),
        st.lists(
            st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
            min_size=n, max_size=n,
        ),
    )
)


class TestNormalizeWeights:
    def test_normalises_to_unit_mass(self):
        assert normalize_weights(np.array([2.0, 2.0])).sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_weights(np.array([1.0, -0.1]))

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="positive"):
            normalize_weights(np.array([0.0, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            normalize_weights(np.array([]))


class TestClosedForm:
    def test_identical_distributions_have_zero_emd(self):
        values = np.array([1.0, 3.0, -2.0])
        weights = np.array([0.2, 0.5, 0.3])
        assert emd_1d(values, weights, values, weights) == pytest.approx(0.0)

    def test_point_masses(self):
        assert emd_1d([0.0], [1.0], [5.0], [1.0]) == pytest.approx(5.0)

    def test_split_mass(self):
        # Half the mass moves distance 2, half stays: EMD = 1.
        assert emd_1d([0.0, 2.0], [0.5, 0.5], [0.0], [1.0]) == pytest.approx(1.0)

    def test_weight_normalisation_is_applied(self):
        assert emd_1d([0.0], [10.0], [3.0], [0.1]) == pytest.approx(3.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching lengths"):
            emd_1d([0.0, 1.0], [1.0], [0.0], [1.0])


class TestSimplexSolver:
    def test_matches_hand_computed(self):
        assert emd_exact([0.0], [1.0], [4.0], [1.0]) == pytest.approx(4.0)

    def test_explicit_cost_matrix(self):
        cost = np.array([[0.0, 10.0], [10.0, 0.0]])
        result = emd_exact([0, 1], [0.5, 0.5], [0, 1], [0.5, 0.5], cost_matrix=cost)
        assert result == pytest.approx(0.0)

    def test_cost_matrix_shape_validated(self):
        with pytest.raises(ValueError, match="cost matrix shape"):
            emd_exact([0.0], [1.0], [1.0], [1.0], cost_matrix=np.zeros((2, 2)))

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            emd_exact([0.0], [1.0], [1.0], [1.0], cost_matrix=np.array([[-1.0]]))


class TestSolverAgreement:
    @settings(max_examples=60, deadline=None)
    @given(distribution, distribution)
    def test_closed_form_matches_linprog(self, first, second):
        va, wa = first
        vb, wb = second
        fast = emd_1d(va, wa, vb, wb)
        reference = emd_linprog(va, wa, vb, wb)
        assert fast == pytest.approx(reference, abs=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(distribution, distribution)
    def test_simplex_matches_linprog(self, first, second):
        va, wa = first
        vb, wb = second
        simplex = emd_exact(va, wa, vb, wb)
        reference = emd_linprog(va, wa, vb, wb)
        assert simplex == pytest.approx(reference, abs=1e-7)


class TestMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(distribution, distribution)
    def test_non_negative_and_symmetric(self, first, second):
        va, wa = first
        vb, wb = second
        forward = emd_1d(va, wa, vb, wb)
        backward = emd_1d(vb, wb, va, wa)
        assert forward >= 0.0
        assert forward == pytest.approx(backward, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(distribution, distribution, distribution)
    def test_triangle_inequality(self, first, second, third):
        va, wa = first
        vb, wb = second
        vc, wc = third
        ab = emd_1d(va, wa, vb, wb)
        bc = emd_1d(vb, wb, vc, wc)
        ac = emd_1d(va, wa, vc, wc)
        assert ac <= ab + bc + 1e-8

    @settings(max_examples=30, deadline=None)
    @given(distribution)
    def test_self_distance_zero(self, dist):
        values, weights = dist
        assert emd_1d(values, weights, values, weights) == pytest.approx(0.0, abs=1e-10)
