"""Tests for recommendation explanations and the trivial baselines."""

import pytest

from repro.core.baselines import PopularityRecommender, RandomRecommender
from repro.core.explain import explain_recommendation
from repro.core.fusion import fuse_fj
from repro.core.recommender import csf_sar_h_recommender


class TestExplain:
    def test_components_match_fused_score(self, workload, index):
        query, candidate = workload.sources[0], workload.sources[1]
        explanation = explain_recommendation(index, query, candidate)
        assert explanation.fused_score == pytest.approx(
            fuse_fj(explanation.content_score, explanation.social_score, explanation.omega)
        )

    def test_self_explanation_is_maximal(self, workload, index):
        query = workload.sources[0]
        other = workload.sources[5]
        self_exp = explain_recommendation(index, query, query)
        other_exp = explain_recommendation(index, query, other)
        assert self_exp.content_score == pytest.approx(1.0)
        assert self_exp.social_score == pytest.approx(1.0)
        assert self_exp.fused_score >= other_exp.fused_score

    def test_matches_are_one_to_one_and_sorted(self, workload, index):
        query, candidate = workload.sources[0], workload.sources[1]
        explanation = explain_recommendation(index, query, candidate)
        rows = [m.query_position for m in explanation.matches]
        cols = [m.candidate_position for m in explanation.matches]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))
        sims = [m.similarity for m in explanation.matches]
        assert sims == sorted(sims, reverse=True)

    def test_shared_users_are_real(self, workload, index):
        query, candidate = workload.sources[0], workload.sources[1]
        explanation = explain_recommendation(index, query, candidate)
        query_users = index.descriptor(query).users
        candidate_users = index.descriptor(candidate).users
        for user in explanation.shared_users:
            assert user in query_users
            assert user in candidate_users

    def test_summary_is_text(self, workload, index):
        explanation = explain_recommendation(
            index, workload.sources[0], workload.sources[1]
        )
        summary = explanation.summary()
        assert workload.sources[1] in summary
        assert "scored" in summary

    def test_unknown_video_rejected(self, index):
        with pytest.raises(KeyError, match="unknown video"):
            explain_recommendation(index, "ghost", index.video_ids[0])

    def test_explanation_score_matches_recommender(self, workload, index):
        """The explanation must reconstruct the SAR-H score exactly."""
        recommender = csf_sar_h_recommender(index)
        query = workload.sources[2]
        candidate = recommender.recommend(query, 1)[0]
        explanation = explain_recommendation(index, query, candidate)
        assert explanation.fused_score == pytest.approx(
            recommender.score(query, candidate), abs=1e-9
        )


class TestRandomRecommender:
    def test_deterministic_per_query(self, workload):
        recommender = RandomRecommender(workload.dataset, seed=1)
        query = workload.sources[0]
        assert recommender.recommend(query, 5) == recommender.recommend(query, 5)

    def test_never_returns_query(self, workload):
        recommender = RandomRecommender(workload.dataset)
        for source in workload.sources:
            assert source not in recommender.recommend(source, 10)

    def test_different_queries_differ(self, workload):
        recommender = RandomRecommender(workload.dataset)
        lists = {tuple(recommender.recommend(s, 10)) for s in workload.sources[:4]}
        assert len(lists) > 1

    def test_invalid_top_k(self, workload):
        with pytest.raises(ValueError, match="top_k"):
            RandomRecommender(workload.dataset).recommend(workload.sources[0], 0)


class TestPopularityRecommender:
    def test_ranked_by_comment_count(self, workload):
        dataset = workload.dataset
        recommender = PopularityRecommender(dataset)
        counts = dataset.comment_counts(up_to_month=11)
        results = recommender.recommend(workload.sources[0], 10)
        values = [counts[v] for v in results]
        assert values == sorted(values, reverse=True)

    def test_query_excluded(self, workload):
        recommender = PopularityRecommender(workload.dataset)
        top_video = recommender.recommend("not-a-video", 1)[0]
        assert top_video not in recommender.recommend(top_video, 50)

    def test_query_independent_tail(self, workload):
        recommender = PopularityRecommender(workload.dataset)
        a = recommender.recommend(workload.sources[0], 10)
        b = recommender.recommend(workload.sources[1], 10)
        assert len(set(a) & set(b)) >= 8  # near-identical global list
