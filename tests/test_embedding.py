"""Tests for the EMD -> L1 embedding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emd import EmdEmbedding, emd_1d

distribution = st.integers(min_value=1, max_value=5).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(min_value=-30, max_value=30, allow_nan=False), min_size=n, max_size=n),
        st.lists(st.floats(min_value=0.1, max_value=3.0, allow_nan=False), min_size=n, max_size=n),
    )
)


class TestConstruction:
    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            EmdEmbedding(lo=0, hi=1, resolution=1)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError, match="range"):
            EmdEmbedding(lo=1.0, hi=1.0)

    def test_bin_width(self):
        assert EmdEmbedding(lo=0, hi=64, resolution=64).bin_width == pytest.approx(1.0)


class TestEmbed:
    def test_output_dimension(self):
        embedding = EmdEmbedding(lo=-10, hi=10, resolution=32)
        vector = embedding.embed(np.array([0.0]), np.array([1.0]))
        assert vector.shape == (32,)

    def test_cdf_is_monotone(self):
        embedding = EmdEmbedding(lo=-10, hi=10, resolution=32)
        vector = embedding.embed(np.array([-5.0, 2.0]), np.array([0.3, 0.7]))
        assert np.all(np.diff(vector) >= -1e-12)

    def test_total_mass_reaches_range_width_scaled(self):
        embedding = EmdEmbedding(lo=0, hi=8, resolution=8)
        vector = embedding.embed(np.array([1.0]), np.array([1.0]))
        assert vector[-1] == pytest.approx(embedding.bin_width * 1.0 / embedding.bin_width * 1.0)

    def test_out_of_range_values_clamped(self):
        embedding = EmdEmbedding(lo=0, hi=1, resolution=4)
        vector = embedding.embed(np.array([100.0]), np.array([1.0]))
        assert np.isfinite(vector).all()

    def test_identical_distributions_embed_identically(self):
        embedding = EmdEmbedding(lo=-5, hi=5, resolution=16)
        a = embedding.embed(np.array([1.0, -1.0]), np.array([0.5, 0.5]))
        b = embedding.embed(np.array([-1.0, 1.0]), np.array([0.5, 0.5]))
        assert np.allclose(a, b)


class TestL1ApproximatesEmd:
    def test_exact_on_grid_points(self):
        embedding = EmdEmbedding(lo=0.0, hi=8.0, resolution=8)
        # Values at bin centers 0.5 and 2.5: EMD = 2, L1 of embeddings = 2.
        va, wa = np.array([0.5]), np.array([1.0])
        vb, wb = np.array([2.5]), np.array([1.0])
        l1 = EmdEmbedding.l1_distance(embedding.embed(va, wa), embedding.embed(vb, wb))
        assert l1 == pytest.approx(emd_1d(va, wa, vb, wb), abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(distribution, distribution)
    def test_l1_close_to_emd(self, first, second):
        embedding = EmdEmbedding(lo=-32.0, hi=32.0, resolution=256)
        va, wa = np.asarray(first[0]), np.asarray(first[1])
        vb, wb = np.asarray(second[0]), np.asarray(second[1])
        true = emd_1d(va, wa, vb, wb)
        l1 = EmdEmbedding.l1_distance(embedding.embed(va, wa), embedding.embed(vb, wb))
        # Quantisation error is bounded by one bin width per unit mass.
        assert abs(l1 - true) <= 2 * embedding.bin_width + 1e-9

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimensions differ"):
            EmdEmbedding.l1_distance(np.zeros(4), np.zeros(5))
