"""End-to-end integration tests across the whole stack.

These verify the *shape* claims of the paper on a small community:
fusion beats its components, the SAR approximation tracks exact social
relevance, social updates keep effectiveness steady, and the paper's
partition beats spectral clustering on sampled sparse communities.
"""

import numpy as np
import pytest

from repro.community import build_workload
from repro.core import (
    CommunityIndex,
    RecommenderConfig,
    content_recommender,
    csf_recommender,
    csf_sar_h_recommender,
    social_recommender,
)
from repro.core.affrf import AffrfRecommender
from repro.evaluation import JudgePanel, evaluate_method
from repro.social import (
    SocialDescriptor,
    build_uig,
    extract_subcommunities,
    partition_silhouette,
    spectral_partition,
)


@pytest.fixture(scope="module")
def medium_workload():
    return build_workload(hours=10.0, seed=17)


@pytest.fixture(scope="module")
def medium_index(medium_workload):
    # k = 60 is the paper's tuned value; smaller k degrades SAR (Fig. 9).
    return CommunityIndex(
        medium_workload.dataset, RecommenderConfig(k=60), build_lsb=False
    )


@pytest.fixture(scope="module")
def medium_panel(medium_workload):
    return JudgePanel(medium_workload.dataset)


class TestEffectivenessShape:
    def test_fusion_beats_components_and_affrf(
        self, medium_workload, medium_index, medium_panel
    ):
        """The paper's Figure 10 ordering: CSF on top."""
        sources = medium_workload.sources
        csf = evaluate_method(
            "CSF", csf_recommender(medium_index).recommend, sources, medium_panel
        )
        sr = evaluate_method(
            "SR", social_recommender(medium_index).recommend, sources, medium_panel
        )
        cr = evaluate_method(
            "CR", content_recommender(medium_index).recommend, sources, medium_panel
        )
        affrf = evaluate_method(
            "AFFRF", AffrfRecommender(medium_index).recommend, sources, medium_panel
        )
        for top_k in (10, 20):
            assert csf.row(top_k).ar >= sr.row(top_k).ar - 0.05
            assert csf.row(top_k).ar > cr.row(top_k).ar
            assert csf.row(top_k).ar > affrf.row(top_k).ar

    def test_sar_approximation_tracks_exact(self, medium_workload, medium_index, medium_panel):
        sources = medium_workload.sources
        exact = evaluate_method(
            "CSF", csf_recommender(medium_index).recommend, sources, medium_panel
        )
        approx = evaluate_method(
            "CSF-SAR-H", csf_sar_h_recommender(medium_index).recommend, sources, medium_panel
        )
        # SAR loses effectiveness to the histogram approximation; at this
        # deliberately small test scale (10 h) the sub-community partition
        # is under-trained, so the bound is loose — the 20 h benches show
        # the gap shrinking to a few tenths (paper Fig. 9's k=60 regime).
        assert approx.row(10).ar >= exact.row(10).ar - 1.5
        assert approx.row(10).ar >= 2.5  # still far above the ~1.8 noise floor


class TestSocialUpdateStability:
    def test_effectiveness_steady_under_updates(self, medium_workload, medium_panel):
        """The paper's Figure 11: updates do not degrade recommendations."""
        dataset = medium_workload.dataset
        index = CommunityIndex(
            dataset, RecommenderConfig(k=40),
            build_lsb=False, build_global_features=False,
        )
        sources = medium_workload.sources
        before = evaluate_method(
            "before", csf_sar_h_recommender(index).recommend, sources, medium_panel,
            top_ks=(10,),
        )
        for month in (12, 13):
            batch = [
                (comment.user_id, comment.video_id)
                for comment in dataset.comments_between(month, month)
            ]
            index.social.apply_comments(batch)
        index.rebuild_sorted_dictionary()
        after = evaluate_method(
            "after", csf_sar_h_recommender(index).recommend, sources, medium_panel,
            top_ks=(10,),
        )
        assert after.row(10).ar >= before.row(10).ar - 0.4


class TestPartitionQuality:
    def test_subgraph_extraction_beats_spectral_on_sampled_community(self):
        """Section 4.2.2's claim, on a sparse sampled community."""
        rng = np.random.default_rng(23)
        n_groups = 30
        sizes = [int(rng.integers(3, 9)) for _ in range(n_groups)]
        descriptors = []
        vid = 0
        for group, size in enumerate(sizes):
            members = [f"u{group}_{i}" for i in range(size)]
            for _ in range(size * 4):
                users = rng.choice(members, size=min(3, size), replace=False)
                descriptors.append(SocialDescriptor.from_users(f"v{vid}", users))
                vid += 1
        graph = build_uig(descriptors)
        ours = extract_subcommunities(graph, 12)
        spectral = spectral_partition(graph, 12, seed=1)
        assert partition_silhouette(graph, ours) > partition_silhouette(graph, spectral)
