"""Unit tests for synthetic video synthesis."""

import numpy as np
import pytest

from repro.video.synthesis import (
    SceneSpec,
    ShotSpec,
    render_shot,
    synthesize_clip,
    topic_scene_spec,
)


class TestTopicSceneSpec:
    def test_same_topic_specs_cluster(self, rng):
        spec_a = topic_scene_spec(3, np.random.default_rng(1))
        spec_b = topic_scene_spec(3, np.random.default_rng(2))
        # Strongly anchored dynamics stay close within a topic.
        assert abs(spec_a.motion - spec_b.motion) < 1.5
        assert abs(spec_a.drift - spec_b.drift) < 1.0

    def test_negative_topic_rejected(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            topic_scene_spec(-1, rng)

    def test_deterministic_given_rng_state(self):
        a = topic_scene_spec(0, np.random.default_rng(5))
        b = topic_scene_spec(0, np.random.default_rng(5))
        assert a == b


class TestRenderShot:
    def test_output_shape_and_range(self, rng):
        spec = ShotSpec(scene=topic_scene_spec(0, rng), num_frames=6)
        frames = render_shot(spec, 16, 16, rng)
        assert frames.shape == (6, 16, 16)
        assert frames.min() >= 0.0
        assert frames.max() <= 255.0

    def test_single_frame_shot(self, rng):
        spec = ShotSpec(scene=topic_scene_spec(1, rng), num_frames=1)
        assert render_shot(spec, 8, 8, rng).shape == (1, 8, 8)

    def test_zero_frames_rejected(self, rng):
        spec = ShotSpec(scene=topic_scene_spec(0, rng), num_frames=0)
        with pytest.raises(ValueError, match="at least one frame"):
            render_shot(spec, 8, 8, rng)

    def test_motion_changes_frames_over_time(self, rng):
        scene = SceneSpec(
            base_intensity=120.0,
            texture_scale=5.0,
            n_objects=2,
            object_intensity=60.0,
            motion=2.0,
            drift=0.0,
        )
        frames = render_shot(ShotSpec(scene, 10), 24, 24, rng, noise_scale=0.0)
        assert not np.array_equal(frames[0], frames[-1])


class TestSynthesizeClip:
    def test_clip_metadata(self, rng):
        clip = synthesize_clip("vid", topic=2, rng=rng, num_shots=2, title="t", tags=("a",))
        assert clip.video_id == "vid"
        assert clip.topic == 2
        assert clip.title == "t"
        assert clip.lineage is None

    def test_frame_count_within_shot_bounds(self, rng):
        clip = synthesize_clip("vid", 0, rng, num_shots=3, frames_per_shot=(4, 8))
        assert 3 * 4 <= clip.num_frames <= 3 * 7

    def test_deterministic_for_same_seed(self):
        a = synthesize_clip("v", 1, np.random.default_rng(9))
        b = synthesize_clip("v", 1, np.random.default_rng(9))
        assert np.array_equal(a.frames, b.frames)

    def test_different_seeds_differ(self):
        a = synthesize_clip("v", 1, np.random.default_rng(9))
        b = synthesize_clip("v", 1, np.random.default_rng(10))
        assert not np.array_equal(a.frames, b.frames)

    def test_shot_boundaries_have_large_differences(self, rng):
        """Cuts must be visible to the shot detector: the mean difference at
        a shot boundary should dwarf the within-shot differences."""
        clip = synthesize_clip("v", 0, rng, num_shots=4, frames_per_shot=(8, 12))
        diffs = [
            float(np.mean(np.abs(clip.frames[i].astype(float) - clip.frames[i + 1].astype(float))))
            for i in range(clip.num_frames - 1)
        ]
        top = sorted(diffs, reverse=True)
        # At least 3 boundary jumps exist and are well above the median.
        assert top[2] > 3 * float(np.median(diffs))

    def test_invalid_shot_count(self, rng):
        with pytest.raises(ValueError, match="at least one shot"):
            synthesize_clip("v", 0, rng, num_shots=0)

    def test_invalid_frame_range(self, rng):
        with pytest.raises(ValueError, match="frames_per_shot"):
            synthesize_clip("v", 0, rng, frames_per_shot=(5, 5))
