"""Unit tests for frame primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.video.frame import (
    INTENSITY_MAX,
    as_frame,
    block_means,
    frame_difference,
    mean_intensity,
    resize_nearest,
)


class TestAsFrame:
    def test_clips_out_of_range_values(self):
        frame = as_frame([[300.0, -5.0], [10.0, 255.0]])
        assert frame.max() <= INTENSITY_MAX
        assert frame.min() >= 0.0

    def test_converts_to_float32(self):
        frame = as_frame(np.ones((3, 3), dtype=np.int64))
        assert frame.dtype == np.float32

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            as_frame(np.ones(5))

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            as_frame(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one pixel"):
            as_frame(np.empty((0, 4)))


class TestMeanIntensity:
    def test_constant_frame(self):
        assert mean_intensity(np.full((4, 4), 7.0)) == pytest.approx(7.0)

    def test_returns_python_float(self):
        assert isinstance(mean_intensity(np.ones((2, 2))), float)


class TestFrameDifference:
    def test_identical_frames_have_zero_difference(self):
        frame = np.arange(16, dtype=np.float32).reshape(4, 4)
        assert frame_difference(frame, frame) == 0.0

    def test_constant_offset(self):
        frame = np.zeros((4, 4))
        assert frame_difference(frame, frame + 9.0) == pytest.approx(9.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shapes differ"):
            frame_difference(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_symmetry(self):
        a = np.random.default_rng(0).uniform(0, 255, (5, 5))
        b = np.random.default_rng(1).uniform(0, 255, (5, 5))
        assert frame_difference(a, b) == pytest.approx(frame_difference(b, a))


class TestBlockMeans:
    def test_exact_division(self):
        frame = np.arange(16, dtype=np.float64).reshape(4, 4)
        means = block_means(frame, 2)
        assert means.shape == (2, 2)
        assert means[0, 0] == pytest.approx(frame[:2, :2].mean())
        assert means[1, 1] == pytest.approx(frame[2:, 2:].mean())

    def test_uneven_division_covers_all_pixels(self):
        frame = np.ones((7, 5))
        means = block_means(frame, 3)
        assert means.shape == (3, 3)
        assert np.allclose(means, 1.0)

    def test_grid_one_is_global_mean(self):
        frame = np.random.default_rng(2).uniform(0, 255, (6, 6))
        assert block_means(frame, 1)[0, 0] == pytest.approx(frame.mean())

    def test_grid_zero_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            block_means(np.ones((4, 4)), 0)

    def test_grid_larger_than_frame_rejected(self):
        with pytest.raises(ValueError, match="exceeds frame dimensions"):
            block_means(np.ones((4, 4)), 5)

    @given(st.integers(min_value=1, max_value=8))
    def test_block_means_bounded_by_frame_extremes(self, grid):
        frame = np.random.default_rng(grid).uniform(0, 255, (16, 16))
        means = block_means(frame, grid)
        assert means.min() >= frame.min() - 1e-9
        assert means.max() <= frame.max() + 1e-9


class TestResizeNearest:
    def test_identity_resize(self):
        frame = np.random.default_rng(3).uniform(0, 255, (8, 8)).astype(np.float32)
        out = resize_nearest(frame, 8, 8)
        assert np.array_equal(out, frame)

    def test_upscale_shape(self):
        assert resize_nearest(np.ones((4, 4), dtype=np.float32), 9, 7).shape == (9, 7)

    def test_downscale_values_come_from_source(self):
        frame = np.arange(64, dtype=np.float32).reshape(8, 8)
        out = resize_nearest(frame, 3, 3)
        assert set(out.reshape(-1)).issubset(set(frame.reshape(-1)))

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="positive"):
            resize_nearest(np.ones((4, 4), dtype=np.float32), 0, 4)
